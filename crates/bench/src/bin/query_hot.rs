//! `query_hot` — the single-source hot-path benchmark behind
//! `BENCH_query.json`.
//!
//! Measures, on the Chung-Lu benchmark family (the same generator family
//! as the paper stand-ins in [`prsim_bench::datasets`]), per graph size:
//!
//! * engine build time,
//! * single-source latency (p50 / p95 / mean over a seeded query set) and
//!   the derived queries-per-second,
//! * batch throughput of [`Prsim::batch_single_source`] at 1, 2 and 4
//!   threads.
//!
//! Everything is seeded, so two runs on the same machine measure the same
//! work — the JSON is machine-comparable, not machine-portable.
//!
//! ```text
//! query_hot [--smoke] [--out PATH] [--check PATH] [--queries N]
//! ```
//!
//! * default: run the full family (5k / 20k / 100k nodes) and write
//!   `BENCH_query.json` in the current directory;
//! * `--smoke`: run only the 5k graph (seconds, for CI);
//! * `--check PATH`: after running, compare the measured single-source
//!   p50 against the same-named dataset inside the committed JSON at
//!   `PATH`; exit non-zero when either file is malformed or the fresh
//!   p50 regresses by more than 3x.

use prsim_core::{HubCount, Prsim, PrsimConfig, QueryParams, QueryWorkspace, SimRankScores};
use prsim_gen::{chung_lu_undirected, ChungLuConfig};
use prsim_graph::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Latency tolerance of `--check`: fail when fresh p50 exceeds 3x the
/// committed p50 for the same dataset.
const CHECK_TOLERANCE: f64 = 3.0;

struct DatasetSpec {
    name: &'static str,
    n: usize,
    avg_degree: f64,
    gamma: f64,
    seed: u64,
}

const FAMILY: &[DatasetSpec] = &[
    DatasetSpec {
        name: "chung_lu_5k",
        n: 5_000,
        avg_degree: 8.0,
        gamma: 2.0,
        seed: 42,
    },
    DatasetSpec {
        name: "chung_lu_20k",
        n: 20_000,
        avg_degree: 8.0,
        gamma: 2.0,
        seed: 43,
    },
    DatasetSpec {
        name: "chung_lu_100k",
        n: 100_000,
        avg_degree: 8.0,
        gamma: 2.0,
        seed: 44,
    },
];

struct BatchPoint {
    threads: usize,
    qps: f64,
}

struct BenchRow {
    name: String,
    n: usize,
    m: usize,
    build_ms: f64,
    p50_us: f64,
    p95_us: f64,
    mean_us: f64,
    qps: f64,
    alloc_qps: f64,
    batch: Vec<BatchPoint>,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn bench_config() -> PrsimConfig {
    PrsimConfig {
        eps: 0.1,
        hubs: HubCount::SqrtN,
        query: QueryParams::Practical { c_mult: 5.0 },
        ..Default::default()
    }
}

/// Consumes the scores enough that the optimizer cannot elide the query.
fn sink(scores: &SimRankScores) -> f64 {
    scores.get(scores.source()) + scores.len() as f64
}

fn run_dataset(spec: &DatasetSpec, queries: usize) -> BenchRow {
    let graph = chung_lu_undirected(ChungLuConfig::new(
        spec.n,
        spec.avg_degree,
        spec.gamma,
        spec.seed,
    ));
    let n = graph.node_count();
    let m = graph.edge_count();

    let t0 = Instant::now();
    let engine = Prsim::build(graph, bench_config()).expect("bench config is valid");
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Seeded query set: uniform random sources, fixed across runs.
    let mut pick = StdRng::seed_from_u64(spec.seed ^ 0x9E37);
    let sources: Vec<NodeId> = (0..queries)
        .map(|_| pick.gen_range(0..n as NodeId))
        .collect();

    // Warmup (touches the index + graph pages, grows the workspace).
    let mut guard = 0.0;
    let mut ws = QueryWorkspace::new();
    for (i, &u) in sources.iter().take(10).enumerate() {
        let mut rng = StdRng::seed_from_u64(0xDEAD + i as u64);
        guard += sink(&engine.single_source_with_workspace(u, &mut ws, &mut rng));
    }

    // Serial latency distribution on the workspace-reused hot path —
    // the steady state of a query server.
    let mut lat_us: Vec<f64> = Vec::with_capacity(sources.len());
    let serial_start = Instant::now();
    for (i, &u) in sources.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(1_000 + i as u64);
        let t = Instant::now();
        let scores = engine.single_source_with_workspace(u, &mut ws, &mut rng);
        lat_us.push(t.elapsed().as_secs_f64() * 1e6);
        guard += sink(&scores);
    }
    let serial_secs = serial_start.elapsed().as_secs_f64();
    lat_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let mean_us = lat_us.iter().sum::<f64>() / lat_us.len().max(1) as f64;

    // Secondary: the allocating entry point (fresh transient workspace
    // per query), i.e. what a naive caller pays.
    let alloc_start = Instant::now();
    for (i, &u) in sources.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(1_000 + i as u64);
        guard += sink(&engine.single_source(u, &mut rng));
    }
    let alloc_qps = sources.len() as f64 / alloc_start.elapsed().as_secs_f64();

    // Batch throughput at 1 / 2 / 4 threads.
    let mut batch = Vec::new();
    for threads in [1usize, 2, 4] {
        let t = Instant::now();
        let results = engine
            .batch_single_source(&sources, threads, 77)
            .expect("sources pre-checked");
        let secs = t.elapsed().as_secs_f64();
        guard += results.iter().map(sink).sum::<f64>();
        batch.push(BatchPoint {
            threads,
            qps: sources.len() as f64 / secs,
        });
    }

    assert!(guard.is_finite());
    BenchRow {
        name: spec.name.to_string(),
        n,
        m,
        build_ms,
        p50_us: percentile(&lat_us, 0.50),
        p95_us: percentile(&lat_us, 0.95),
        mean_us,
        qps: sources.len() as f64 / serial_secs,
        alloc_qps,
        batch,
    }
}

/// `pre_pr` baseline block of an existing benchmark file, re-emitted on
/// regeneration so the committed pre-PR record survives `--out`
/// overwrites.
fn preserved_pre_pr(out_path: &str) -> Option<String> {
    let existing = std::fs::read_to_string(out_path).ok()?;
    let value = mini_json::parse(&existing).ok()?;
    value.get("pre_pr").map(mini_json::render)
}

fn render_json(rows: &[BenchRow], queries: usize, pre_pr: Option<&str>) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"query_hot\",\n");
    out.push_str("  \"unit_note\": \"latencies in microseconds, build in milliseconds; seeded and machine-comparable\",\n");
    out.push_str(&format!(
        "  \"config\": {{\"eps\": 0.1, \"c\": 0.6, \"query\": \"practical c_mult=5\", \"hubs\": \"sqrt_n\", \"queries_per_dataset\": {queries}}},\n"
    ));
    out.push_str(&format!(
        "  \"machine\": {{\"cpu_cores\": {}}},\n",
        std::thread::available_parallelism().map_or(0, |p| p.get())
    ));
    if let Some(block) = pre_pr {
        out.push_str(&format!("  \"pre_pr\": {block},\n"));
    }
    out.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"n\": {}, \"m\": {}, \"build_ms\": {:.2}, \"single_source\": {{\"p50_us\": {:.1}, \"p95_us\": {:.1}, \"mean_us\": {:.1}, \"qps\": {:.1}, \"alloc_qps\": {:.1}}}, \"batch\": [",
            r.name, r.n, r.m, r.build_ms, r.p50_us, r.p95_us, r.mean_us, r.qps, r.alloc_qps
        ));
        for (j, b) in r.batch.iter().enumerate() {
            out.push_str(&format!(
                "{{\"threads\": {}, \"qps\": {:.1}}}",
                b.threads, b.qps
            ));
            if j + 1 < r.batch.len() {
                out.push_str(", ");
            }
        }
        out.push_str("]}");
        if i + 1 < rows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = arg_value(&args, "--out").unwrap_or_else(|| "BENCH_query.json".to_string());
    let check_path = arg_value(&args, "--check");
    let queries: usize = arg_value(&args, "--queries")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 60 } else { 200 });

    let specs: Vec<&DatasetSpec> = if smoke {
        FAMILY.iter().take(1).collect()
    } else {
        FAMILY.iter().collect()
    };

    let mut rows = Vec::new();
    for spec in specs {
        eprintln!("running {} (n = {}) ...", spec.name, spec.n);
        let row = run_dataset(spec, queries);
        eprintln!(
            "  build {:.1} ms | p50 {:.0} us | p95 {:.0} us | {:.0} qps serial | {:.0} qps @4t",
            row.build_ms,
            row.p50_us,
            row.p95_us,
            row.qps,
            row.batch.last().map(|b| b.qps).unwrap_or(0.0),
        );
        rows.push(row);
    }

    let pre_pr = preserved_pre_pr(&out_path);
    let json = render_json(&rows, queries, pre_pr.as_deref());
    // Self-check: what we write must parse.
    mini_json::parse(&json).expect("query_hot produced malformed JSON");

    if let Some(path) = check_path {
        check_against_baseline(&rows, &path);
    } else {
        std::fs::write(&out_path, &json).expect("cannot write benchmark JSON");
        eprintln!("wrote {out_path}");
    }
}

/// `--check`: compare measured p50 against the committed baseline JSON.
fn check_against_baseline(rows: &[BenchRow], path: &str) {
    let committed = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read committed baseline {path}: {e}"));
    let value = mini_json::parse(&committed)
        .unwrap_or_else(|e| panic!("committed baseline {path} is malformed JSON: {e}"));
    let results = value
        .get("results")
        .and_then(mini_json::Value::as_array)
        .expect("committed baseline lacks a results array");

    let mut failures = 0usize;
    for row in rows {
        let committed_p50 = results
            .iter()
            .find(|r| r.get("name").and_then(mini_json::Value::as_str) == Some(&row.name))
            .and_then(|r| r.get("single_source"))
            .and_then(|s| s.get("p50_us"))
            .and_then(mini_json::Value::as_f64);
        match committed_p50 {
            None => {
                eprintln!("FAIL: baseline has no p50_us entry for {}", row.name);
                failures += 1;
            }
            Some(base) if row.p50_us > base * CHECK_TOLERANCE => {
                eprintln!(
                    "FAIL: {} p50 regressed {:.0} us -> {:.0} us (> {CHECK_TOLERANCE}x)",
                    row.name, base, row.p50_us
                );
                failures += 1;
            }
            Some(base) => {
                eprintln!(
                    "OK: {} p50 {:.0} us vs committed {:.0} us",
                    row.name, row.p50_us, base
                );
            }
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}

/// A deliberately small JSON reader: enough to validate the benchmark
/// artifact's structure and pull numbers back out for `--check`. Not a
/// general-purpose parser (no unicode escapes, no exotic numbers).
mod mini_json {
    use std::collections::BTreeMap;

    /// Parsed JSON value.
    #[derive(Debug)]
    pub enum Value {
        Null,
        Bool(bool),
        Num(f64),
        Str(String),
        Arr(Vec<Value>),
        Obj(BTreeMap<String, Value>),
    }

    impl Value {
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Obj(map) => map.get(key),
                _ => None,
            }
        }
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(items) => Some(items),
                _ => None,
            }
        }
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(x) => Some(*x),
                _ => None,
            }
        }
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }
    }

    /// Serializes a value back to compact JSON (used to re-emit preserved
    /// blocks verbatim-enough when regenerating the benchmark file).
    pub fn render(value: &Value) -> String {
        match value {
            Value::Null => "null".to_string(),
            Value::Bool(b) => b.to_string(),
            Value::Num(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    format!("{}", *x as i64)
                } else {
                    format!("{x}")
                }
            }
            Value::Str(s) => format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\"")),
            Value::Arr(items) => {
                let inner: Vec<String> = items.iter().map(render).collect();
                format!("[{}]", inner.join(", "))
            }
            Value::Obj(map) => {
                let inner: Vec<String> = map
                    .iter()
                    .map(|(k, v)| format!("\"{k}\": {}", render(v)))
                    .collect();
                format!("{{{}}}", inner.join(", "))
            }
        }
    }

    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && (b[*pos] as char).is_ascii_whitespace() {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
        if b.get(*pos) == Some(&ch) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {pos}", ch as char))
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => parse_object(b, pos),
            Some(b'[') => parse_array(b, pos),
            Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
            Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
            Some(b'n') => parse_lit(b, pos, "null", Value::Null),
            Some(_) => parse_number(b, pos),
            None => Err("unexpected end of input".into()),
        }
    }

    fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {pos}"))
        }
    }

    fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        }
        std::str::from_utf8(&b[start..*pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|x| x.is_finite())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(b, pos, b'"')?;
        let mut out = String::new();
        while let Some(&c) = b.get(*pos) {
            *pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *b.get(*pos).ok_or("dangling escape")?;
                    *pos += 1;
                    out.push(match esc {
                        b'n' => '\n',
                        b't' => '\t',
                        b'"' => '"',
                        b'\\' => '\\',
                        b'/' => '/',
                        other => return Err(format!("unsupported escape \\{}", other as char)),
                    });
                }
                other => out.push(other as char),
            }
        }
        Err("unterminated string".into())
    }

    fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(parse_value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {pos}")),
            }
        }
    }

    fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'{')?;
        let mut map = BTreeMap::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            skip_ws(b, pos);
            let key = parse_string(b, pos)?;
            skip_ws(b, pos);
            expect(b, pos, b':')?;
            map.insert(key, parse_value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
            }
        }
    }
}
