//! `query_hot` — the single-source hot-path benchmark behind
//! `BENCH_query.json`.
//!
//! Measures, on the Chung-Lu benchmark family (the same generator family
//! as the paper stand-ins in [`prsim_bench::datasets`]), per graph size:
//!
//! * engine build time,
//! * single-source latency (p50 / p95 / mean over a seeded query set) and
//!   the derived queries-per-second,
//! * batch throughput of [`Prsim::batch_single_source`] at 1, 2 and 4
//!   threads.
//!
//! Everything is seeded, so two runs on the same machine measure the same
//! work — the JSON is machine-comparable, not machine-portable.
//!
//! ```text
//! query_hot [--smoke] [--out PATH] [--check PATH] [--queries N]
//! ```
//!
//! * default: run the full family (5k / 20k / 100k nodes) and write
//!   `BENCH_query.json` in the current directory;
//! * `--smoke`: run only the 5k graph (seconds, for CI);
//! * `--check PATH`: after running, compare the measured single-source
//!   p50 against the same-named dataset inside the committed JSON at
//!   `PATH`; exit non-zero when either file is malformed or the fresh
//!   p50 regresses by more than 3x.

use prsim_bench::hot::{hot_bench_config, percentile, HOT_C_MULT};
use prsim_bench::json as mini_json;
use prsim_core::{Prsim, QueryWorkspace, SimRankScores};
use prsim_gen::{chung_lu_undirected, ChungLuConfig};
use prsim_graph::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Latency tolerance of `--check`: fail when fresh p50 exceeds 3x the
/// committed p50 for the same dataset.
const CHECK_TOLERANCE: f64 = 3.0;

struct DatasetSpec {
    name: &'static str,
    n: usize,
    avg_degree: f64,
    gamma: f64,
    seed: u64,
}

const FAMILY: &[DatasetSpec] = &[
    DatasetSpec {
        name: "chung_lu_5k",
        n: 5_000,
        avg_degree: 8.0,
        gamma: 2.0,
        seed: 42,
    },
    DatasetSpec {
        name: "chung_lu_20k",
        n: 20_000,
        avg_degree: 8.0,
        gamma: 2.0,
        seed: 43,
    },
    DatasetSpec {
        name: "chung_lu_100k",
        n: 100_000,
        avg_degree: 8.0,
        gamma: 2.0,
        seed: 44,
    },
];

struct BatchPoint {
    threads: usize,
    qps: f64,
}

struct BenchRow {
    name: String,
    n: usize,
    m: usize,
    build_ms: f64,
    p50_us: f64,
    p95_us: f64,
    mean_us: f64,
    qps: f64,
    alloc_qps: f64,
    batch: Vec<BatchPoint>,
}

/// Consumes the scores enough that the optimizer cannot elide the query.
fn sink(scores: &SimRankScores) -> f64 {
    scores.get(scores.source()) + scores.len() as f64
}

fn run_dataset(spec: &DatasetSpec, queries: usize) -> BenchRow {
    let graph = chung_lu_undirected(ChungLuConfig::new(
        spec.n,
        spec.avg_degree,
        spec.gamma,
        spec.seed,
    ));
    let n = graph.node_count();
    let m = graph.edge_count();

    let t0 = Instant::now();
    let engine = Prsim::build(graph, hot_bench_config()).expect("bench config is valid");
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Seeded query set: uniform random sources, fixed across runs.
    let mut pick = StdRng::seed_from_u64(spec.seed ^ 0x9E37);
    let sources: Vec<NodeId> = (0..queries)
        .map(|_| pick.gen_range(0..n as NodeId))
        .collect();

    // Warmup (touches the index + graph pages, grows the workspace).
    let mut guard = 0.0;
    let mut ws = QueryWorkspace::new();
    for (i, &u) in sources.iter().take(10).enumerate() {
        let mut rng = StdRng::seed_from_u64(0xDEAD + i as u64);
        guard += sink(&engine.single_source_with_workspace(u, &mut ws, &mut rng));
    }

    // Serial latency distribution on the workspace-reused hot path —
    // the steady state of a query server.
    let mut lat_us: Vec<f64> = Vec::with_capacity(sources.len());
    let serial_start = Instant::now();
    for (i, &u) in sources.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(1_000 + i as u64);
        let t = Instant::now();
        let scores = engine.single_source_with_workspace(u, &mut ws, &mut rng);
        lat_us.push(t.elapsed().as_secs_f64() * 1e6);
        guard += sink(&scores);
    }
    let serial_secs = serial_start.elapsed().as_secs_f64();
    lat_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let mean_us = lat_us.iter().sum::<f64>() / lat_us.len().max(1) as f64;

    // Secondary: the allocating entry point (fresh transient workspace
    // per query), i.e. what a naive caller pays.
    let alloc_start = Instant::now();
    for (i, &u) in sources.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(1_000 + i as u64);
        guard += sink(&engine.single_source(u, &mut rng));
    }
    let alloc_qps = sources.len() as f64 / alloc_start.elapsed().as_secs_f64();

    // Batch throughput at 1 / 2 / 4 threads.
    let mut batch = Vec::new();
    for threads in [1usize, 2, 4] {
        let t = Instant::now();
        let results = engine
            .batch_single_source(&sources, threads, 77)
            .expect("sources pre-checked");
        let secs = t.elapsed().as_secs_f64();
        guard += results.iter().map(sink).sum::<f64>();
        batch.push(BatchPoint {
            threads,
            qps: sources.len() as f64 / secs,
        });
    }

    assert!(guard.is_finite());
    BenchRow {
        name: spec.name.to_string(),
        n,
        m,
        build_ms,
        p50_us: percentile(&lat_us, 0.50),
        p95_us: percentile(&lat_us, 0.95),
        mean_us,
        qps: sources.len() as f64 / serial_secs,
        alloc_qps,
        batch,
    }
}

/// `pre_pr` baseline block of an existing benchmark file, re-emitted on
/// regeneration so the committed pre-PR record survives `--out`
/// overwrites.
fn preserved_pre_pr(out_path: &str) -> Option<String> {
    let existing = std::fs::read_to_string(out_path).ok()?;
    let value = mini_json::parse(&existing).ok()?;
    value.get("pre_pr").map(mini_json::render)
}

fn render_json(rows: &[BenchRow], queries: usize, pre_pr: Option<&str>) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"query_hot\",\n");
    out.push_str("  \"unit_note\": \"latencies in microseconds, build in milliseconds; seeded and machine-comparable\",\n");
    let cfg = hot_bench_config();
    out.push_str(&format!(
        "  \"config\": {{\"eps\": {}, \"c\": {}, \"query\": \"practical c_mult={}\", \"hubs\": \"sqrt_n\", \"queries_per_dataset\": {queries}}},\n",
        cfg.eps, cfg.c, HOT_C_MULT,
    ));
    out.push_str(&format!(
        "  \"machine\": {{\"cpu_cores\": {}}},\n",
        std::thread::available_parallelism().map_or(0, |p| p.get())
    ));
    if let Some(block) = pre_pr {
        out.push_str(&format!("  \"pre_pr\": {block},\n"));
    }
    out.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"n\": {}, \"m\": {}, \"build_ms\": {:.2}, \"single_source\": {{\"p50_us\": {:.1}, \"p95_us\": {:.1}, \"mean_us\": {:.1}, \"qps\": {:.1}, \"alloc_qps\": {:.1}}}, \"batch\": [",
            r.name, r.n, r.m, r.build_ms, r.p50_us, r.p95_us, r.mean_us, r.qps, r.alloc_qps
        ));
        for (j, b) in r.batch.iter().enumerate() {
            out.push_str(&format!(
                "{{\"threads\": {}, \"qps\": {:.1}}}",
                b.threads, b.qps
            ));
            if j + 1 < r.batch.len() {
                out.push_str(", ");
            }
        }
        out.push_str("]}");
        if i + 1 < rows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = arg_value(&args, "--out").unwrap_or_else(|| "BENCH_query.json".to_string());
    let check_path = arg_value(&args, "--check");
    let queries: usize = arg_value(&args, "--queries")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 60 } else { 200 });

    let specs: Vec<&DatasetSpec> = if smoke {
        FAMILY.iter().take(1).collect()
    } else {
        FAMILY.iter().collect()
    };

    let mut rows = Vec::new();
    for spec in specs {
        eprintln!("running {} (n = {}) ...", spec.name, spec.n);
        let row = run_dataset(spec, queries);
        eprintln!(
            "  build {:.1} ms | p50 {:.0} us | p95 {:.0} us | {:.0} qps serial | {:.0} qps @4t",
            row.build_ms,
            row.p50_us,
            row.p95_us,
            row.qps,
            row.batch.last().map(|b| b.qps).unwrap_or(0.0),
        );
        rows.push(row);
    }

    let pre_pr = preserved_pre_pr(&out_path);
    let json = render_json(&rows, queries, pre_pr.as_deref());
    // Self-check: what we write must parse.
    mini_json::parse(&json).expect("query_hot produced malformed JSON");

    if let Some(path) = check_path {
        check_against_baseline(&rows, &path);
    } else {
        std::fs::write(&out_path, &json).expect("cannot write benchmark JSON");
        eprintln!("wrote {out_path}");
    }
}

/// `--check`: compare measured p50 against the committed baseline JSON.
fn check_against_baseline(rows: &[BenchRow], path: &str) {
    let committed = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read committed baseline {path}: {e}"));
    let value = mini_json::parse(&committed)
        .unwrap_or_else(|e| panic!("committed baseline {path} is malformed JSON: {e}"));
    let results = value
        .get("results")
        .and_then(mini_json::Value::as_array)
        .expect("committed baseline lacks a results array");

    let mut failures = 0usize;
    for row in rows {
        let committed_p50 = results
            .iter()
            .find(|r| r.get("name").and_then(mini_json::Value::as_str) == Some(&row.name))
            .and_then(|r| r.get("single_source"))
            .and_then(|s| s.get("p50_us"))
            .and_then(mini_json::Value::as_f64);
        match committed_p50 {
            None => {
                eprintln!("FAIL: baseline has no p50_us entry for {}", row.name);
                failures += 1;
            }
            Some(base) if row.p50_us > base * CHECK_TOLERANCE => {
                eprintln!(
                    "FAIL: {} p50 regressed {:.0} us -> {:.0} us (> {CHECK_TOLERANCE}x)",
                    row.name, base, row.p50_us
                );
                failures += 1;
            }
            Some(base) => {
                eprintln!(
                    "OK: {} p50 {:.0} us vs committed {:.0} us",
                    row.name, row.p50_us, base
                );
            }
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
