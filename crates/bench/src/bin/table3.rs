//! Table 3: dataset statistics (name, type, n, m) — printed for the
//! laptop-scale stand-ins plus their paper originals for reference.
//!
//! Usage: `cargo run -p prsim-bench --bin table3 --release [-- --scale 1]`

use prsim_bench::{accuracy_datasets, parse_scale};
use prsim_eval::report::render_table;
use prsim_graph::degrees::{degree_sequence, powerlaw_exponent_ccdf_fit, DegreeKind};

fn main() {
    let scale = parse_scale();
    println!("== Table 3: data sets (stand-ins at scale {scale}) ==\n");
    let headers = [
        "name",
        "type",
        "n",
        "m",
        "fitted_gamma",
        "paper_n",
        "paper_m",
    ];
    let paper: [(&str, &str, &str); 5] = [
        ("DB", "5,425,963", "17,298,033"),
        ("LJ", "4,847,571", "68,993,773"),
        ("IT", "41,291,594", "1,150,725,436"),
        ("TW", "41,652,230", "1,468,365,182"),
        ("UK", "133,633,040", "5,507,679,822"),
    ];
    let mut cells = Vec::new();
    for (ds, (pname, pn, pm)) in accuracy_datasets(scale).iter().zip(paper.iter()) {
        assert_eq!(ds.name, *pname);
        let degs = degree_sequence(&ds.graph, DegreeKind::Out);
        let gamma = powerlaw_exponent_ccdf_fit(&degs, 3).unwrap_or(f64::NAN);
        cells.push(vec![
            ds.name.to_string(),
            ds.kind.to_string(),
            ds.graph.node_count().to_string(),
            ds.graph.edge_count().to_string(),
            format!("{gamma:.2} (target {})", ds.gamma),
            pn.to_string(),
            pm.to_string(),
        ]);
    }
    println!("{}", render_table(&headers, &cells));
    println!(
        "Substitution note: each stand-in preserves the paper dataset's type\n\
         and degree-distribution shape (gamma, relative density); absolute\n\
         sizes are scaled to laptop budgets (see DESIGN.md section 3)."
    );
}
