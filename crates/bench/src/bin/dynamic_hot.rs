//! `dynamic_hot` — the dynamic-graph hot-path benchmark behind
//! `BENCH_dynamic.json`.
//!
//! Measures, on the same Chung-Lu family as `query_hot`, per graph size:
//!
//! * **incremental** update throughput of [`DynamicPrsim`] in
//!   `Incremental` mode (updates/sec over a seeded insert/delete stream),
//!   plus repair statistics (`mean_repair_fraction` = dirty hubs / hub
//!   count per single-edge update, PageRank refinement iterations,
//!   rebuilds, compactions);
//! * **query freshness**: the latency from an update arriving to a fully
//!   fresh single-source answer (apply + query, p50/p95);
//! * **rebuild** baseline: the same engine in `RebuildOnBatch {{ batch: 1 }}`
//!   mode — the paper's literal contract — and the derived `speedup`;
//! * **serve**: sustained query throughput through `prsim-server`'s
//!   epoch-snapshot host, idle vs. under a concurrent WAL-backed update
//!   stream — the contention case snapshot isolation exists for. Queries
//!   run on the caller thread against `Arc`-swapped snapshots while a
//!   writer thread streams durable update batches through a deliberately
//!   tight admission queue; the block records both rates, the epochs
//!   published, the update throughput sustained *during* the query
//!   window, plus overload telemetry: `BUSY` rejections the writer
//!   retried through, the deepest the applier queue got, and p99
//!   single-query latency under contention.
//! * **concurrent_clients**: `--clients N` real TCP clients querying
//!   through the connection supervisor at once, with one additional
//!   client connected but deliberately stalled for the whole window.
//!   Per-client p99 round-trip latency goes into the JSON — a stalled
//!   connection inflating any of them is a head-of-line-blocking
//!   regression.
//!
//! Everything is seeded, so two runs on the same machine measure the same
//! work — the JSON is machine-comparable, not machine-portable.
//!
//! ```text
//! dynamic_hot [--smoke] [--out PATH] [--check PATH] [--updates N] [--clients N]
//! ```
//!
//! * default: run the full family (5k / 20k / 100k nodes) and write
//!   `BENCH_dynamic.json` in the current directory;
//! * `--smoke`: run only the 5k graph (seconds, for CI);
//! * `--check PATH`: after running, compare measured incremental
//!   updates/sec against the same-named dataset inside the committed JSON
//!   at `PATH`; exit non-zero when either file is malformed or throughput
//!   regresses by more than 3x.

use prsim_bench::hot::{hot_bench_config, percentile, HOT_C_MULT};
use prsim_bench::json as mini_json;
use prsim_core::{DynamicParams, DynamicPrsim, UpdateMode};
use prsim_gen::{chung_lu_undirected, ChungLuConfig};
use prsim_graph::{EdgeUpdate, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::time::Instant;

/// Throughput tolerance of `--check`: fail when fresh incremental
/// updates/sec drops below 1/3 of the committed value.
const CHECK_TOLERANCE: f64 = 3.0;

struct DatasetSpec {
    name: &'static str,
    n: usize,
    avg_degree: f64,
    gamma: f64,
    seed: u64,
    /// Rebuild-mode updates measured (each costs a full build).
    rebuild_updates: usize,
}

const FAMILY: &[DatasetSpec] = &[
    DatasetSpec {
        name: "chung_lu_5k",
        n: 5_000,
        avg_degree: 8.0,
        gamma: 2.0,
        seed: 42,
        rebuild_updates: 10,
    },
    DatasetSpec {
        name: "chung_lu_20k",
        n: 20_000,
        avg_degree: 8.0,
        gamma: 2.0,
        seed: 43,
        rebuild_updates: 6,
    },
    DatasetSpec {
        name: "chung_lu_100k",
        n: 100_000,
        avg_degree: 8.0,
        gamma: 2.0,
        seed: 44,
        rebuild_updates: 4,
    },
];

struct BenchRow {
    name: String,
    n: usize,
    m: usize,
    build_ms: f64,
    inc_updates_per_sec: f64,
    inc_applied: usize,
    mean_repair_fraction: f64,
    max_repair_fraction: f64,
    mean_pr_iterations: f64,
    rebuilds: usize,
    compactions: usize,
    freshness_p50_ms: f64,
    freshness_p95_ms: f64,
    reb_updates_per_sec: f64,
    reb_applied: usize,
    speedup: f64,
    serve: ServeRow,
    concurrent: ClientsRow,
}

/// The `serve` scenario's measurements.
struct ServeRow {
    /// Queries answered per second with no writer running.
    qps_idle: f64,
    /// Queries answered per second while the writer streams batches.
    qps_under_updates: f64,
    /// Ratio under/idle (1.0 = updates never block queries).
    qps_retained: f64,
    /// Epochs the applier published during the contended window.
    epochs_published: u64,
    /// Updates the writer pushed through the WAL during that window.
    updates_during: u64,
    /// Durable update throughput sustained while queries ran.
    concurrent_updates_per_sec: f64,
    /// `BUSY` rejections the bounded admission queue handed the writer
    /// (each one retried until admitted).
    busy_rejects: u64,
    /// Deepest the applier queue got, in batches.
    max_queue_depth: u64,
    /// p99 single-query latency during the contended window, ms.
    p99_query_ms: f64,
}

/// The `--clients N` TCP sweep: N concurrently querying clients through
/// the connection supervisor, plus one deliberately stalled client that
/// holds its slot open for the whole window (the no-head-of-line-
/// blocking check — its presence must not inflate anyone's p99).
struct ClientsRow {
    /// Actively querying clients.
    clients: usize,
    /// Stalled byte-free connections held open during the window.
    stalled: usize,
    /// Per-client p99 round-trip latency, ms (one entry per client).
    per_client_p99_ms: Vec<f64>,
    /// Aggregate queries per second across all active clients.
    qps_total: f64,
}

fn run_clients_sweep(
    graph: &prsim_graph::DiGraph,
    spec: &DatasetSpec,
    clients: usize,
    queries: usize,
) -> ClientsRow {
    use prsim_server::{conn, ConnOptions, EngineHost, HostOptions};
    use std::io::{BufRead, BufReader, Write};
    use std::net::{TcpListener, TcpStream};
    use std::sync::atomic::{AtomicBool, Ordering};

    let wal_dir = std::env::temp_dir().join(format!(
        "prsim_bench_clients_{}_{}",
        spec.name,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&wal_dir);
    let host = EngineHost::open(graph, &wal_dir, HostOptions::new(hot_bench_config()))
        .expect("bench config is valid");
    let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral bind");
    let addr = listener.local_addr().expect("bound address");
    let stop = AtomicBool::new(false);
    let opts = ConnOptions {
        max_clients: clients + 1, // room for the staller
        ..ConnOptions::default()
    };
    let n = graph.node_count() as NodeId;

    let mut per_client_p99_ms = Vec::new();
    let mut qps_total = 0.0;
    std::thread::scope(|scope| {
        let server =
            scope.spawn(|| conn::serve_supervised(&host, listener, &opts, &stop).expect("serves"));
        // The staller takes its slot first and never sends a byte.
        let staller = TcpStream::connect(addr).expect("staller connects");
        let t = Instant::now();
        let workers: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let stream = TcpStream::connect(addr).expect("client connects");
                    let _ = stream.set_nodelay(true);
                    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                    let mut writer = stream;
                    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0xC11E ^ c as u64);
                    let mut lat_ms = Vec::with_capacity(queries);
                    let mut line = String::new();
                    for i in 0..queries {
                        let u = rng.gen_range(0..n);
                        let tq = Instant::now();
                        writeln!(
                            writer,
                            "query {u} top=8 seed={}",
                            u64::from(u) ^ ((c as u64) << 32) ^ i as u64
                        )
                        .expect("request written");
                        line.clear();
                        reader.read_line(&mut line).expect("response read");
                        lat_ms.push(tq.elapsed().as_secs_f64() * 1e3);
                        assert!(line.starts_with("ok "), "query failed: {line}");
                    }
                    lat_ms
                })
            })
            .collect();
        let mut lats: Vec<Vec<f64>> = workers
            .into_iter()
            .map(|w| w.join().expect("client thread"))
            .collect();
        let window_s = t.elapsed().as_secs_f64();
        drop(staller);
        stop.store(true, Ordering::Release);
        server.join().expect("supervisor thread");
        for lat in &mut lats {
            lat.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
            per_client_p99_ms.push(percentile(lat, 0.99));
        }
        qps_total = (clients * queries) as f64 / window_s.max(1e-12);
    });
    host.shutdown().expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&wal_dir);

    ClientsRow {
        clients,
        stalled: 1,
        per_client_p99_ms,
        qps_total,
    }
}

/// Seeded single-edge update stream: alternating deletes of live edges
/// and inserts of fresh non-edges, every one guaranteed to apply.
struct StreamGen {
    live: Vec<(NodeId, NodeId)>,
    live_set: BTreeSet<(NodeId, NodeId)>,
    n: NodeId,
    rng: StdRng,
    step: usize,
}

impl StreamGen {
    fn new(edges: Vec<(NodeId, NodeId)>, n: usize, seed: u64) -> Self {
        let live_set = edges.iter().copied().collect();
        StreamGen {
            live: edges,
            live_set,
            n: n as NodeId,
            rng: StdRng::seed_from_u64(seed),
            step: 0,
        }
    }

    fn next(&mut self) -> EdgeUpdate {
        self.step += 1;
        if self.step % 2 == 0 && !self.live.is_empty() {
            let i = self.rng.gen_range(0..self.live.len());
            let (u, v) = self.live.swap_remove(i);
            self.live_set.remove(&(u, v));
            EdgeUpdate::Delete(u, v)
        } else {
            loop {
                let u = self.rng.gen_range(0..self.n);
                let v = self.rng.gen_range(0..self.n);
                if u != v && !self.live_set.contains(&(u, v)) {
                    self.live.push((u, v));
                    self.live_set.insert((u, v));
                    return EdgeUpdate::Insert(u, v);
                }
            }
        }
    }
}

/// Sustained-qps-under-concurrent-updates scenario: queries against the
/// epoch-snapshot host, first idle, then with a writer thread streaming
/// durable batches through the WAL the whole time.
fn run_serve(
    graph: &prsim_graph::DiGraph,
    edges: Vec<(NodeId, NodeId)>,
    spec: &DatasetSpec,
    queries: usize,
) -> ServeRow {
    use prsim_server::{EngineHost, HostOptions};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    let wal_dir = std::env::temp_dir().join(format!(
        "prsim_bench_serve_{}_{}",
        spec.name,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&wal_dir);
    // A deliberately tight admission bound so the bench exercises (and
    // records) the backpressure path instead of hiding it behind a deep
    // queue. The writer retries BUSY, so nothing is lost.
    let mut options = HostOptions::new(hot_bench_config());
    options.queue_depth = 4;
    options.busy_timeout = std::time::Duration::from_millis(1);
    let host = EngineHost::open(graph, &wal_dir, options).expect("bench config is valid");
    let n = graph.node_count() as NodeId;

    let run_queries = |tag: u64| -> f64 {
        let mut rng = StdRng::seed_from_u64(spec.seed ^ tag);
        let mut guard = 0.0f64;
        let t = Instant::now();
        for _ in 0..queries {
            let u = rng.gen_range(0..n);
            let snap = host.snapshot();
            let (scores, _) = snap.query(u, u64::from(u) ^ tag).expect("u in range");
            guard += scores.get(u);
        }
        assert!(guard.is_finite());
        queries as f64 / t.elapsed().as_secs_f64()
    };

    let qps_idle = run_queries(0x1D7E);

    // The contended window must genuinely overlap durable writes: on a
    // starved box the nominal query count can finish before the writer
    // thread is ever scheduled, so the query loop keeps going until the
    // writer has committed MIN_BATCHES. The writer in turn caps itself
    // at MAX_BATCHES so the post-window applier drain stays bounded.
    const MIN_BATCHES: u64 = 4;
    const MAX_BATCHES: u64 = 25;
    const BATCH: usize = 4;
    let stop = AtomicBool::new(false);
    let committed = AtomicU64::new(0);
    let before = host.stats();
    let mut qps_under_updates = 0.0;
    let mut window_s = 0.0;
    let mut lat_ms: Vec<f64> = Vec::new();
    std::thread::scope(|scope| {
        let writer = scope.spawn(|| {
            let mut gen = StreamGen::new(edges, n as usize, spec.seed ^ 0x5E7E);
            while !stop.load(Ordering::Acquire) && committed.load(Ordering::Acquire) < MAX_BATCHES {
                let batch: Vec<EdgeUpdate> = (0..BATCH).map(|_| gen.next()).collect();
                loop {
                    match host.update(batch.clone()) {
                        Ok(_) => break,
                        Err(e) if e.retryable() => continue,
                        Err(e) => panic!("updates stay in range: {e}"),
                    }
                }
                committed.fetch_add(1, Ordering::Release);
            }
        });
        let mut rng = StdRng::seed_from_u64(spec.seed ^ 0xC0DE);
        let mut guard = 0.0f64;
        let mut ran = 0usize;
        let t = Instant::now();
        while ran < queries || committed.load(Ordering::Acquire) < MIN_BATCHES {
            let u = rng.gen_range(0..n);
            let tq = Instant::now();
            let snap = host.snapshot();
            let (scores, _) = snap.query(u, u64::from(u) ^ 0xC0DE).expect("u in range");
            lat_ms.push(tq.elapsed().as_secs_f64() * 1e3);
            guard += scores.get(u);
            ran += 1;
        }
        window_s = t.elapsed().as_secs_f64();
        assert!(guard.is_finite());
        qps_under_updates = ran as f64 / window_s;
        stop.store(true, Ordering::Release);
        writer.join().expect("writer thread");
    });
    host.sync().expect("applier drains");
    let after = host.stats();
    host.shutdown().expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&wal_dir);

    let updates_during = committed.load(Ordering::Acquire) * BATCH as u64;
    lat_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    ServeRow {
        qps_idle,
        qps_under_updates,
        qps_retained: qps_under_updates / qps_idle.max(1e-12),
        epochs_published: after.epoch - before.epoch,
        updates_during,
        concurrent_updates_per_sec: updates_during as f64 / window_s.max(1e-12),
        busy_rejects: after.busy_rejects - before.busy_rejects,
        max_queue_depth: after.max_queue_depth as u64,
        p99_query_ms: percentile(&lat_ms, 0.99),
    }
}

fn run_dataset(spec: &DatasetSpec, updates: usize, clients: usize) -> BenchRow {
    let graph = chung_lu_undirected(ChungLuConfig::new(
        spec.n,
        spec.avg_degree,
        spec.gamma,
        spec.seed,
    ));
    let n = graph.node_count();
    let m = graph.edge_count();
    let edges: Vec<(NodeId, NodeId)> = graph.edges().collect();

    // Incremental engine.
    let t0 = Instant::now();
    let mut inc = DynamicPrsim::new(
        &graph,
        hot_bench_config(),
        UpdateMode::Incremental(DynamicParams::default()),
    )
    .expect("bench config is valid");
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Phase 1: update throughput.
    let mut gen = StreamGen::new(edges.clone(), n, spec.seed ^ 0xD15C);
    let mut repair_fractions: Vec<f64> = Vec::with_capacity(updates);
    let mut pr_iters = 0usize;
    let mut rebuilds_during = 0usize;
    let thru_start = Instant::now();
    for _ in 0..updates {
        let up = gen.next();
        let stats = inc.apply(up).expect("stream updates are in range");
        assert!(stats.applied, "generated stream must always apply");
        pr_iters += stats.pr_iterations;
        if stats.rebuilt {
            rebuilds_during += 1;
        } else {
            repair_fractions.push(stats.repair_fraction);
        }
    }
    let thru_secs = thru_start.elapsed().as_secs_f64();
    let inc_updates_per_sec = updates as f64 / thru_secs;
    let mean_repair_fraction =
        repair_fractions.iter().sum::<f64>() / repair_fractions.len().max(1) as f64;
    let max_repair_fraction = repair_fractions.iter().copied().fold(0.0, f64::max);

    // Phase 2: query freshness (update arrival -> fresh answer).
    let probes = (updates / 4).clamp(5, 20);
    let mut freshness_ms: Vec<f64> = Vec::with_capacity(probes);
    let mut guard = 0.0f64;
    for i in 0..probes {
        let up = gen.next();
        let t = Instant::now();
        let stats = inc.apply(up).expect("stream updates are in range");
        let mut rng = StdRng::seed_from_u64(0xF2E5 + i as u64);
        let u = rng.gen_range(0..inc.node_count() as NodeId);
        let (scores, _) = inc.single_source(u, &mut rng).expect("u in range");
        freshness_ms.push(t.elapsed().as_secs_f64() * 1e3);
        guard += scores.get(u) + stats.repair_fraction;
    }
    freshness_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let totals = inc.totals();

    // Phase 3: rebuild-per-batch baseline (batch = 1, the paper's k = 1
    // point: every update is followed by a full rebuild before the next
    // answer is fresh).
    let mut reb = DynamicPrsim::new(
        &graph,
        hot_bench_config(),
        UpdateMode::RebuildOnBatch { batch: 1 },
    )
    .expect("bench config is valid");
    let mut gen2 = StreamGen::new(edges.clone(), n, spec.seed ^ 0xD15C);
    let reb_start = Instant::now();
    for _ in 0..spec.rebuild_updates {
        let up = gen2.next();
        let stats = reb.apply(up).expect("stream updates are in range");
        assert!(stats.applied);
        reb.refresh().expect("rebuild succeeds");
    }
    let reb_secs = reb_start.elapsed().as_secs_f64();
    let reb_updates_per_sec = spec.rebuild_updates as f64 / reb_secs;

    // Phase 4: the serving host under concurrent updates.
    let serve = run_serve(&graph, edges, spec, updates.clamp(20, 60));

    // Phase 5: concurrent TCP clients through the supervisor, with one
    // stalled connection holding a slot the whole time.
    let concurrent = run_clients_sweep(&graph, spec, clients, updates.clamp(20, 60));

    assert!(guard.is_finite());
    BenchRow {
        name: spec.name.to_string(),
        n,
        m,
        build_ms,
        inc_updates_per_sec,
        inc_applied: updates,
        mean_repair_fraction,
        max_repair_fraction,
        mean_pr_iterations: pr_iters as f64 / updates.max(1) as f64,
        rebuilds: rebuilds_during,
        compactions: totals.compactions,
        freshness_p50_ms: percentile(&freshness_ms, 0.50),
        freshness_p95_ms: percentile(&freshness_ms, 0.95),
        reb_updates_per_sec,
        reb_applied: spec.rebuild_updates,
        speedup: inc_updates_per_sec / reb_updates_per_sec,
        serve,
        concurrent,
    }
}

/// `pre_pr` baseline block of an existing benchmark file, re-emitted on
/// regeneration so a committed pre-PR record survives `--out` overwrites.
fn preserved_pre_pr(out_path: &str) -> Option<String> {
    let existing = std::fs::read_to_string(out_path).ok()?;
    let value = mini_json::parse(&existing).ok()?;
    value.get("pre_pr").map(mini_json::render)
}

fn render_json(rows: &[BenchRow], updates: usize, pre_pr: Option<&str>) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"dynamic_hot\",\n");
    out.push_str("  \"unit_note\": \"updates/sec; freshness = apply+query latency in milliseconds; seeded and machine-comparable\",\n");
    let cfg = hot_bench_config();
    let params = DynamicParams::default();
    out.push_str(&format!(
        "  \"config\": {{\"eps\": {}, \"c\": {}, \"query\": \"practical c_mult={}\", \"hubs\": \"sqrt_n\", \"drift_budget\": {}, \"updates_per_dataset\": {updates}, \"rebuild_batch\": 1}},\n",
        cfg.eps, cfg.c, HOT_C_MULT, params.drift_budget,
    ));
    out.push_str(&format!(
        "  \"machine\": {{\"cpu_cores\": {}}},\n",
        std::thread::available_parallelism().map_or(0, |p| p.get())
    ));
    if let Some(block) = pre_pr {
        out.push_str(&format!("  \"pre_pr\": {block},\n"));
    }
    out.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        // The serve/concurrent blocks ride on the same row; --check
        // ignores them, so adding them stays backward-compatible with
        // committed baselines.
        let per_client = r
            .concurrent
            .per_client_p99_ms
            .iter()
            .map(|v| format!("{v:.3}"))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"n\": {}, \"m\": {}, \"build_ms\": {:.2}, \"incremental\": {{\"updates_per_sec\": {:.2}, \"applied\": {}, \"mean_repair_fraction\": {:.4}, \"max_repair_fraction\": {:.4}, \"mean_pr_iterations\": {:.2}, \"rebuilds\": {}, \"compactions\": {}, \"freshness_p50_ms\": {:.2}, \"freshness_p95_ms\": {:.2}}}, \"rebuild\": {{\"updates_per_sec\": {:.3}, \"applied\": {}}}, \"speedup\": {:.1}, \"serve\": {{\"qps_idle\": {:.1}, \"qps_under_updates\": {:.1}, \"qps_retained\": {:.3}, \"epochs_published\": {}, \"updates_during\": {}, \"concurrent_updates_per_sec\": {:.1}, \"busy_rejects\": {}, \"max_queue_depth\": {}, \"p99_query_ms\": {:.2}}}, \"concurrent_clients\": {{\"clients\": {}, \"stalled_clients\": {}, \"per_client_p99_ms\": [{per_client}], \"qps_total\": {:.1}}}}}",
            r.name,
            r.n,
            r.m,
            r.build_ms,
            r.inc_updates_per_sec,
            r.inc_applied,
            r.mean_repair_fraction,
            r.max_repair_fraction,
            r.mean_pr_iterations,
            r.rebuilds,
            r.compactions,
            r.freshness_p50_ms,
            r.freshness_p95_ms,
            r.reb_updates_per_sec,
            r.reb_applied,
            r.speedup,
            r.serve.qps_idle,
            r.serve.qps_under_updates,
            r.serve.qps_retained,
            r.serve.epochs_published,
            r.serve.updates_during,
            r.serve.concurrent_updates_per_sec,
            r.serve.busy_rejects,
            r.serve.max_queue_depth,
            r.serve.p99_query_ms,
            r.concurrent.clients,
            r.concurrent.stalled,
            r.concurrent.qps_total,
        ));
        if i + 1 < rows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = arg_value(&args, "--out").unwrap_or_else(|| "BENCH_dynamic.json".to_string());
    let check_path = arg_value(&args, "--check");
    let updates: usize = arg_value(&args, "--updates")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 30 } else { 60 });
    let clients: usize = arg_value(&args, "--clients")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
        .max(1);

    let specs: Vec<&DatasetSpec> = if smoke {
        FAMILY.iter().take(1).collect()
    } else {
        FAMILY.iter().collect()
    };

    let mut rows = Vec::new();
    for spec in specs {
        eprintln!("running {} (n = {}) ...", spec.name, spec.n);
        let row = run_dataset(spec, updates, clients);
        eprintln!(
            "  build {:.0} ms | incremental {:.1} u/s (repair {:.3} mean) | rebuild {:.2} u/s | speedup {:.1}x | freshness p50 {:.1} ms",
            row.build_ms,
            row.inc_updates_per_sec,
            row.mean_repair_fraction,
            row.reb_updates_per_sec,
            row.speedup,
            row.freshness_p50_ms,
        );
        rows.push(row);
    }

    let pre_pr = preserved_pre_pr(&out_path);
    let json = render_json(&rows, updates, pre_pr.as_deref());
    // Self-check: what we write must parse.
    mini_json::parse(&json).expect("dynamic_hot produced malformed JSON");

    if let Some(path) = check_path {
        check_against_baseline(&rows, &path);
    } else {
        std::fs::write(&out_path, &json).expect("cannot write benchmark JSON");
        eprintln!("wrote {out_path}");
    }
}

/// `--check`: compare measured incremental updates/sec against the
/// committed baseline JSON.
fn check_against_baseline(rows: &[BenchRow], path: &str) {
    let committed = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read committed baseline {path}: {e}"));
    let value = mini_json::parse(&committed)
        .unwrap_or_else(|e| panic!("committed baseline {path} is malformed JSON: {e}"));
    let results = value
        .get("results")
        .and_then(mini_json::Value::as_array)
        .expect("committed baseline lacks a results array");

    let mut failures = 0usize;
    for row in rows {
        let committed_ups = results
            .iter()
            .find(|r| r.get("name").and_then(mini_json::Value::as_str) == Some(&row.name))
            .and_then(|r| r.get("incremental"))
            .and_then(|s| s.get("updates_per_sec"))
            .and_then(mini_json::Value::as_f64);
        match committed_ups {
            None => {
                eprintln!(
                    "FAIL: baseline has no incremental updates_per_sec entry for {}",
                    row.name
                );
                failures += 1;
            }
            Some(base) if row.inc_updates_per_sec < base / CHECK_TOLERANCE => {
                eprintln!(
                    "FAIL: {} incremental throughput regressed {:.1} u/s -> {:.1} u/s (> {CHECK_TOLERANCE}x)",
                    row.name, base, row.inc_updates_per_sec
                );
                failures += 1;
            }
            Some(base) => {
                eprintln!(
                    "OK: {} incremental {:.1} u/s vs committed {:.1} u/s",
                    row.name, row.inc_updates_per_sec, base
                );
            }
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
