//! Table 1: complexity comparison of single-source SimRank algorithms,
//! plus an empirical verification of the theorem behind PRSim's row.
//!
//! The theoretical half is static (it restates the paper's bounds). The
//! empirical half measures, on a γ-sweep of Chung–Lu graphs, the
//! reverse-PageRank second moment Σπ(w)² — the quantity Theorem 3.11 says
//! drives PRSim's query cost — against the measured query cost, verifying
//! they move together.
//!
//! Usage: `cargo run -p prsim-bench --bin table1 --release [-- --scale 1]`

use prsim_bench::parse_scale;
use prsim_core::pagerank::second_moment;
use prsim_core::{PrsimConfig, QueryParams};
use prsim_eval::experiment::pick_query_nodes;
use prsim_eval::report::{render_table, write_csv};
use prsim_eval::PrsimAlgo;
use prsim_gen::{chung_lu_undirected, ChungLuConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = parse_scale();
    println!("== Table 1: theoretical comparison (as printed in the paper) ==\n");
    let theory_headers = [
        "algorithm",
        "query time",
        "query time (power-law)",
        "index size",
        "preprocessing",
    ];
    let theory = vec![
        vec![
            "PRSim".to_string(),
            "O(n log(n/d)/eps^2 * sum pi(w)^2)".to_string(),
            "O(log(n/d)/eps^2) for gamma>2; +log n factor at gamma=2; sublinear for 1<gamma<2"
                .to_string(),
            "O(min{n/eps, m})".to_string(),
            "O(m/eps)".to_string(),
        ],
        vec![
            "TSF".to_string(),
            "O(n log(n/d)/eps^2)".to_string(),
            "same (structure-oblivious)".to_string(),
            "O(n log(n/d)/eps^2)".to_string(),
            "O(n log(n/d)/eps^2)".to_string(),
        ],
        vec![
            "READS".to_string(),
            "O(n log(n/d)/eps^2)".to_string(),
            "same (structure-oblivious)".to_string(),
            "O(n log(n/d)/eps^2)".to_string(),
            "O(n log(n/d)/eps^2)".to_string(),
        ],
        vec![
            "ProbeSim".to_string(),
            "O(n log(n/d)/eps^2)".to_string(),
            "same (structure-oblivious)".to_string(),
            "0".to_string(),
            "0".to_string(),
        ],
        vec![
            "SLING".to_string(),
            "O(n/eps)".to_string(),
            "same (structure-oblivious)".to_string(),
            "O(n/eps)".to_string(),
            "O(m/eps + n log(n/d)/eps^2)".to_string(),
        ],
    ];
    println!("{}", render_table(&theory_headers, &theory));

    println!("== Table 1 (empirical): sum pi(w)^2 predicts PRSim's query cost ==\n");
    let n = ((20_000.0 * scale) as usize).max(1_000);
    let headers = ["gamma", "second_moment", "n*m2", "query_s", "backward_cost"];
    let mut cells = Vec::new();
    for gamma in [1.2f64, 1.6, 2.0, 3.0, 5.0, 8.0] {
        let g = chung_lu_undirected(ChungLuConfig::new(
            n,
            10.0,
            gamma,
            600 + (gamma * 7.0) as u64,
        ));
        let prsim = PrsimAlgo::build(
            g,
            PrsimConfig {
                eps: 0.25,
                query: QueryParams::Practical { c_mult: 3.0 },
                ..Default::default()
            },
        )
        .expect("valid config");
        let m2 = second_moment(prsim.engine().reverse_pagerank());
        let queries = pick_query_nodes(n, 10, 11);
        let mut rng = StdRng::seed_from_u64(13);
        let start = std::time::Instant::now();
        let mut backward_cost = 0usize;
        for &u in &queries {
            let (_, stats) = prsim.engine().try_single_source(u, &mut rng).unwrap();
            backward_cost += stats.backward_cost;
        }
        let t = start.elapsed().as_secs_f64() / queries.len() as f64;
        eprintln!("[table1] gamma = {gamma}: m2 = {m2:.3e}, query {t:.5}s");
        cells.push(vec![
            format!("{gamma}"),
            format!("{m2:.4e}"),
            format!("{:.2}", n as f64 * m2),
            format!("{t:.6}"),
            format!("{}", backward_cost / queries.len()),
        ]);
    }
    println!("{}", render_table(&headers, &cells));
    let _ = write_csv("target/table1.csv", &headers, &cells);
    println!(
        "\nPaper shape check: the second moment (and hence n*m2, the bound's\n\
         graph-dependent factor) falls as gamma rises, and the measured\n\
         query time / backward-walk cost fall with it."
    );
}
