//! Figure 6: synthetic power-law experiments.
//!
//! * `fig6 a` — query time vs power-law exponent γ ∈ {1..9} at fixed
//!   n and d̄ = 10 (paper: n = 100k; default scale runs n = 20k).
//!   Reproduces Conjecture 1: query time decreases with γ, flattening
//!   past γ ≈ 4.
//! * `fig6 b` — PRSim query time vs n at γ = 3, d̄ = 10
//!   (paper: n = 10⁴..10⁷; default scale runs 10⁴..10⁶). The concave
//!   log-log curve demonstrates sublinearity.
//!
//! Usage: `cargo run -p prsim-bench --bin fig6 --release -- a [--scale 0.5]`

use prsim_baselines::{ProbeSim, ProbeSimConfig, SingleSourceSimRank};
use prsim_core::{PrsimConfig, QueryParams};
use prsim_eval::experiment::pick_query_nodes;
use prsim_eval::report::{render_table, write_csv};
use prsim_eval::PrsimAlgo;
use prsim_gen::{chung_lu_undirected, ChungLuConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

use prsim_bench::{parse_scale, parse_subcommand};

fn fig6_config() -> PrsimConfig {
    PrsimConfig {
        eps: 0.25, // the paper's synthetic-experiment setting
        query: QueryParams::Practical { c_mult: 3.0 },
        ..Default::default()
    }
}

fn mean_query_time(algo: &dyn SingleSourceSimRank, queries: &[u32], seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let start = std::time::Instant::now();
    for &u in queries {
        let _ = algo.single_source(u, &mut rng);
    }
    start.elapsed().as_secs_f64() / queries.len().max(1) as f64
}

fn part_a(scale: f64) {
    let n = ((20_000.0 * scale) as usize).max(1_000);
    println!("== Figure 6(a): query time vs gamma (n = {n}, d-bar = 10) ==\n");
    let headers = [
        "gamma",
        "prsim_query_s",
        "probesim_query_s",
        "second_moment",
    ];
    let mut cells = Vec::new();
    for gamma in [1.0f64, 1.5, 2.0, 3.0, 4.0, 6.0, 9.0] {
        let g = Arc::new(chung_lu_undirected(ChungLuConfig::new(
            n,
            10.0,
            gamma,
            7_000 + (gamma * 10.0) as u64,
        )));
        let queries = pick_query_nodes(n, 10, 55);
        let prsim = PrsimAlgo::build((*g).clone(), fig6_config()).expect("valid config");
        let m2 = prsim_core::pagerank::second_moment(prsim.engine().reverse_pagerank());
        let t_prsim = mean_query_time(&prsim, &queries, 1);
        let probesim = ProbeSim::new(
            Arc::clone(&g),
            ProbeSimConfig {
                eps_a: 0.25,
                c_mult: 3.0,
                ..Default::default()
            },
        );
        let t_probe = mean_query_time(&probesim, &queries, 2);
        eprintln!("[fig6a] gamma = {gamma}: prsim {t_prsim:.5}s, probesim {t_probe:.5}s");
        cells.push(vec![
            format!("{gamma}"),
            format!("{t_prsim:.6}"),
            format!("{t_probe:.6}"),
            format!("{m2:.3e}"),
        ]);
    }
    println!("{}", render_table(&headers, &cells));
    let _ = write_csv("target/fig6a.csv", &headers, &cells);
    println!(
        "\nPaper shape check: query time decreases as gamma grows from 1 to 4\n\
         and flattens after (the y = 1/gamma trend of Conjecture 1); the\n\
         reverse-PageRank second moment tracks the same curve."
    );
}

fn part_b(scale: f64) {
    println!("== Figure 6(b): PRSim query time vs n (gamma = 3, d-bar = 10) ==\n");
    let headers = ["n", "build_s", "query_s", "query_s_per_node"];
    let mut cells = Vec::new();
    let max_n = (1_000_000.0 * scale) as usize;
    let mut n = 10_000usize;
    while n <= max_n.max(10_000) {
        let g = chung_lu_undirected(ChungLuConfig::new(n, 10.0, 3.0, 8_000 + n as u64));
        let queries = pick_query_nodes(n, 8, 66);
        let prsim = PrsimAlgo::build(g, fig6_config()).expect("valid config");
        let t = mean_query_time(&prsim, &queries, 3);
        eprintln!("[fig6b] n = {n}: query {t:.5}s");
        cells.push(vec![
            n.to_string(),
            format!("{:.3}", prsim.preprocess_seconds),
            format!("{t:.6}"),
            format!("{:.3e}", t / n as f64),
        ]);
        n *= 10;
    }
    println!("{}", render_table(&headers, &cells));
    let _ = write_csv("target/fig6b.csv", &headers, &cells);
    println!(
        "\nPaper shape check: query time grows sublinearly in n — the\n\
         per-node time column must fall as n grows (concave log-log curve)."
    );
}

fn main() {
    let scale = parse_scale();
    match parse_subcommand().as_deref() {
        Some("a") => part_a(scale),
        Some("b") => part_b(scale),
        _ => {
            part_a(scale);
            println!();
            part_b(scale);
        }
    }
}
