//! Figure 7: Erdős–Rényi (non-power-law) graphs with growing density.
//!
//! * `fig7 a` — query time vs average degree d̄ (paper: n = 10⁴,
//!   d̄ ∈ {5..10⁴}; default scale sweeps d̄ ∈ {5..2000}).
//! * `fig7 b` — index size vs d̄ for the index-based algorithms.
//!
//! Usage: `cargo run -p prsim-bench --bin fig7 --release -- a [--scale 1]`

use prsim_baselines::{
    ProbeSim, ProbeSimConfig, Reads, ReadsConfig, SingleSourceSimRank, Sling, SlingConfig, Tsf,
    TsfConfig,
};
use prsim_core::{PrsimConfig, QueryParams};
use prsim_eval::experiment::pick_query_nodes;
use prsim_eval::report::{human_bytes, render_table, write_csv};
use prsim_eval::PrsimAlgo;
use prsim_gen::erdos_renyi_directed;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

use prsim_bench::{parse_scale, parse_subcommand};

const N: usize = 10_000;

fn degrees(scale: f64) -> Vec<usize> {
    let mut ds = vec![5usize, 20, 100, 500];
    if scale >= 1.0 {
        ds.push(2_000);
    }
    if scale >= 2.0 {
        ds.push(10_000);
    }
    ds
}

fn fig7_prsim_config() -> PrsimConfig {
    PrsimConfig {
        eps: 0.25,
        query: QueryParams::Practical { c_mult: 3.0 },
        ..Default::default()
    }
}

fn mean_query_time(algo: &dyn SingleSourceSimRank, queries: &[u32], seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let start = std::time::Instant::now();
    for &u in queries {
        let _ = algo.single_source(u, &mut rng);
    }
    start.elapsed().as_secs_f64() / queries.len().max(1) as f64
}

fn part_a(scale: f64) {
    println!("== Figure 7(a): query time vs average degree, ER graphs (n = {N}) ==\n");
    let headers = [
        "avg_degree",
        "prsim_s",
        "probesim_s",
        "sling_s",
        "tsf_s",
        "reads_s",
    ];
    let mut cells = Vec::new();
    for d in degrees(scale) {
        let p = d as f64 / (N as f64 - 1.0);
        let g = Arc::new(erdos_renyi_directed(N, p, 9_000 + d as u64));
        let queries = pick_query_nodes(N, 5, 77);
        let mut rng = StdRng::seed_from_u64(31);

        let prsim = PrsimAlgo::build((*g).clone(), fig7_prsim_config()).expect("valid config");
        let t_prsim = mean_query_time(&prsim, &queries, 1);
        let probesim = ProbeSim::new(
            Arc::clone(&g),
            ProbeSimConfig {
                eps_a: 0.25,
                c_mult: 3.0,
                ..Default::default()
            },
        );
        let t_probe = mean_query_time(&probesim, &queries, 2);
        let sling = Sling::build(
            Arc::clone(&g),
            SlingConfig {
                eps_a: 0.25,
                eta_samples: 200,
                ..Default::default()
            },
            &mut rng,
        );
        let t_sling = mean_query_time(&sling, &queries, 3);
        let tsf = Tsf::build(
            Arc::clone(&g),
            TsfConfig {
                rg: 100,
                rq: 20,
                ..Default::default()
            },
            &mut rng,
        );
        let t_tsf = mean_query_time(&tsf, &queries, 4);
        let reads = Reads::build(
            Arc::clone(&g),
            ReadsConfig {
                c: 0.6,
                r: 50,
                t: 5,
            },
            &mut rng,
        );
        let t_reads = mean_query_time(&reads, &queries, 5);

        eprintln!("[fig7a] d-bar = {d}: prsim {t_prsim:.5}s probesim {t_probe:.5}s");
        cells.push(vec![
            d.to_string(),
            format!("{t_prsim:.6}"),
            format!("{t_probe:.6}"),
            format!("{t_sling:.6}"),
            format!("{t_tsf:.6}"),
            format!("{t_reads:.6}"),
        ]);
    }
    println!("{}", render_table(&headers, &cells));
    let _ = write_csv("target/fig7a.csv", &headers, &cells);
    println!(
        "\nPaper shape check: ProbeSim's query time degrades sharply as d-bar\n\
         grows (full out-neighbor scans) while PRSim stays nearly flat\n\
         (VBBW visits only the in-degree-bounded prefix)."
    );
}

fn part_b(scale: f64) {
    println!("== Figure 7(b): index size vs average degree, ER graphs (n = {N}) ==\n");
    let headers = ["avg_degree", "prsim", "sling", "tsf", "reads"];
    let mut cells = Vec::new();
    for d in degrees(scale) {
        let p = d as f64 / (N as f64 - 1.0);
        let g = Arc::new(erdos_renyi_directed(N, p, 9_000 + d as u64));
        let mut rng = StdRng::seed_from_u64(32);
        let prsim = PrsimAlgo::build((*g).clone(), fig7_prsim_config()).expect("valid config");
        let sling = Sling::build(
            Arc::clone(&g),
            SlingConfig {
                eps_a: 0.25,
                eta_samples: 50,
                ..Default::default()
            },
            &mut rng,
        );
        let tsf = Tsf::build(
            Arc::clone(&g),
            TsfConfig {
                rg: 100,
                rq: 20,
                ..Default::default()
            },
            &mut rng,
        );
        let reads = Reads::build(
            Arc::clone(&g),
            ReadsConfig {
                c: 0.6,
                r: 50,
                t: 5,
            },
            &mut rng,
        );
        eprintln!("[fig7b] d-bar = {d}");
        cells.push(vec![
            d.to_string(),
            human_bytes(prsim.index_size_bytes()),
            human_bytes(sling.index_size_bytes()),
            human_bytes(tsf.index_size_bytes()),
            human_bytes(reads.index_size_bytes()),
        ]);
    }
    println!("{}", render_table(&headers, &cells));
    let _ = write_csv("target/fig7b.csv", &headers, &cells);
    println!(
        "\nPaper shape check: TSF/READS index sizes are flat in d-bar (per-node\n\
         walk storage); PRSim's stays bounded by O(m); on dense ER graphs\n\
         every walk-based index is small because similarities vanish."
    );
}

fn main() {
    let scale = parse_scale();
    match parse_subcommand().as_deref() {
        Some("a") => part_a(scale),
        Some("b") => part_b(scale),
        _ => {
            part_a(scale);
            println!();
            part_b(scale);
        }
    }
}
