//! Figure 2: AvgError@50 vs query time, all algorithms, five datasets.
//!
//! Usage: `cargo run -p prsim-bench --bin fig2 --release [-- --scale 0.5 --heavy]`
//!
//! Each (algorithm, parameter) point reports mean query time and
//! AvgError@50 against the shared pooled ground truth — the tradeoff
//! curves of the paper's Figure 2. (Figures 3–5 reuse the same sweep with
//! different columns; run those binaries for their views.)

use prsim_bench::sweep::{paper_grids, run_dataset_sweep, sweep_row_cells, SWEEP_HEADERS};
use prsim_bench::{accuracy_datasets, parse_scale};
use prsim_eval::experiment::pick_query_nodes;
use prsim_eval::report::{render_table, write_csv};
use prsim_eval::GroundTruth;
use std::sync::Arc;

fn main() {
    let scale = parse_scale();
    let heavy = std::env::args().any(|a| a == "--heavy");
    let queries_per_dataset = 10;
    let k = 50;

    println!("== Figure 2: AvgError@50 vs query time (scale {scale}) ==\n");
    let mut all_rows = Vec::new();
    for ds in accuracy_datasets(scale) {
        let g = Arc::new(ds.graph);
        eprintln!(
            "[fig2] dataset {} (n = {}, m = {}): building algorithms...",
            ds.name,
            g.node_count(),
            g.edge_count()
        );
        let truth = GroundTruth::exact(&g, 0.6);
        let specs = paper_grids(&g, heavy, 900 + ds.name.len() as u64);
        let queries = pick_query_nodes(g.node_count(), queries_per_dataset, 42);
        let rows = run_dataset_sweep(ds.name, &specs, &queries, &truth, k, 4242);
        all_rows.extend(rows);
    }

    let cells: Vec<Vec<String>> = all_rows.iter().map(sweep_row_cells).collect();
    println!("{}", render_table(&SWEEP_HEADERS, &cells));
    let csv = "target/fig2.csv";
    if write_csv(csv, &SWEEP_HEADERS, &cells).is_ok() {
        println!("series written to {csv}");
    }
    println!(
        "\nPaper shape check: at matched AvgError@50, PRSim's query time\n\
         should sit at or below every competitor's on every dataset, with\n\
         the largest margins on TW (flat degree distribution)."
    );
}
