//! Figure 1: out-degree CCDFs of the IT-like vs TW-like datasets.
//!
//! The paper's Figure 1 plots the cumulative out-degree distributions of
//! IT-2004 and Twitter on log-log axes, showing IT is far more skewed
//! (larger γ) despite both graphs having similar n and m. This binary
//! prints the same series for the synthetic stand-ins plus fitted
//! exponents.
//!
//! Usage: `cargo run -p prsim-bench --bin fig1 --release [-- --scale 0.2]`

use prsim_bench::datasets::figure1_pair;
use prsim_bench::parse_scale;
use prsim_eval::report::render_table;
use prsim_graph::degrees::{ccdf, degree_sequence, powerlaw_exponent_ccdf_fit, DegreeKind};

fn main() {
    let scale = parse_scale();
    let (it, tw) = figure1_pair(scale);
    println!("== Figure 1: out-degree CCDF (log-log) ==\n");

    let mut rows = Vec::new();
    for d in [&it, &tw] {
        let degs = degree_sequence(&d.graph, DegreeKind::Out);
        let n = degs.len();
        let fitted = powerlaw_exponent_ccdf_fit(&degs, 3).unwrap_or(f64::NAN);
        println!(
            "{}: n = {}, m = {}, target gamma = {}, fitted gamma = {:.2}",
            d.name,
            d.graph.node_count(),
            d.graph.edge_count(),
            d.gamma,
            fitted
        );
        // Log-spaced sample of the CCDF.
        let full = ccdf(&degs);
        let mut next_k = 1usize;
        for &(k, cnt) in &full {
            if k >= next_k {
                rows.push(vec![
                    d.name.to_string(),
                    k.to_string(),
                    format!("{:.6e}", cnt as f64 / n as f64),
                ]);
                next_k = (next_k * 2).max(k + 1);
            }
        }
    }
    println!();
    println!(
        "{}",
        render_table(&["dataset", "k", "P(out-degree >= k)"], &rows)
    );
    println!(
        "Paper shape check: the IT-like CCDF must fall much faster (steeper\n\
         slope / larger gamma) than the TW-like CCDF at the same n and d-bar."
    );
}
