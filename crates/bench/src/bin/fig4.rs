//! Figure 4: AvgError@50 vs index size (index-based algorithms only).
//!
//! Usage: `cargo run -p prsim-bench --bin fig4 --release [-- --scale 0.5]`

use prsim_bench::sweep::{paper_grids, run_dataset_sweep};
use prsim_bench::{accuracy_datasets, parse_scale};
use prsim_eval::experiment::pick_query_nodes;
use prsim_eval::report::{human_bytes, render_table, write_csv};
use prsim_eval::GroundTruth;
use std::sync::Arc;

fn main() {
    let scale = parse_scale();
    let heavy = std::env::args().any(|a| a == "--heavy");
    println!("== Figure 4: AvgError@50 vs index size (scale {scale}) ==\n");
    let headers = [
        "dataset",
        "algorithm",
        "params",
        "index",
        "index_bytes",
        "avg_err@50",
    ];
    let mut cells = Vec::new();
    for ds in accuracy_datasets(scale) {
        let g = Arc::new(ds.graph);
        eprintln!("[fig4] dataset {} ...", ds.name);
        let truth = GroundTruth::exact(&g, 0.6);
        let specs = paper_grids(&g, heavy, 900 + ds.name.len() as u64);
        let queries = pick_query_nodes(g.node_count(), 10, 42);
        for r in run_dataset_sweep(ds.name, &specs, &queries, &truth, 50, 4242) {
            if r.index_bytes == 0 {
                continue; // index-free algorithms are not in Figure 4
            }
            cells.push(vec![
                r.dataset,
                r.algo,
                r.params,
                human_bytes(r.index_bytes),
                r.index_bytes.to_string(),
                format!("{:.6}", r.avg_error),
            ]);
        }
    }
    println!("{}", render_table(&headers, &cells));
    let _ = write_csv("target/fig4.csv", &headers, &cells);
    println!(
        "\nPaper shape check: at matched error, PRSim's index is orders of\n\
         magnitude smaller than READS' and consistently below SLING's\n\
         (the paper's DB example: 200MB vs READS' 100GB)."
    );
}
