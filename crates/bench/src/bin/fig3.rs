//! Figure 3: Precision@50 vs query time — the precision view of the
//! Figure 2 sweep.
//!
//! Usage: `cargo run -p prsim-bench --bin fig3 --release [-- --scale 0.5]`

use prsim_bench::sweep::{paper_grids, run_dataset_sweep};
use prsim_bench::{accuracy_datasets, parse_scale};
use prsim_eval::experiment::pick_query_nodes;
use prsim_eval::report::{render_table, write_csv};
use prsim_eval::GroundTruth;
use std::sync::Arc;

fn main() {
    let scale = parse_scale();
    let heavy = std::env::args().any(|a| a == "--heavy");
    let k = 50;

    println!("== Figure 3: Precision@50 vs query time (scale {scale}) ==\n");
    let headers = ["dataset", "algorithm", "params", "query_s", "prec@50"];
    let mut cells = Vec::new();
    for ds in accuracy_datasets(scale) {
        let g = Arc::new(ds.graph);
        eprintln!("[fig3] dataset {} ...", ds.name);
        let truth = GroundTruth::exact(&g, 0.6);
        let specs = paper_grids(&g, heavy, 900 + ds.name.len() as u64);
        let queries = pick_query_nodes(g.node_count(), 10, 42);
        for r in run_dataset_sweep(ds.name, &specs, &queries, &truth, k, 4242) {
            cells.push(vec![
                r.dataset,
                r.algo,
                r.params,
                format!("{:.6}", r.query_seconds),
                format!("{:.3}", r.precision),
            ]);
        }
    }
    println!("{}", render_table(&headers, &cells));
    let _ = write_csv("target/fig3.csv", &headers, &cells);
    println!(
        "\nPaper shape check: PRSim reaches the highest Precision@50 at the\n\
         lowest query time; ProbeSim needs an order of magnitude more time\n\
         for comparable precision (most visible on TW-like data)."
    );
}
