//! Laptop-scale stand-ins for the paper's Table 3 datasets.
//!
//! | paper dataset | type | defining trait | stand-in |
//! |---|---|---|---|
//! | DBLP-Author (DB) | undirected | moderate γ ≈ 2.2 | Chung–Lu undirected, γ = 2.2, d̄ = 6 |
//! | LiveJournal (LJ) | directed | γ ≈ 1.9 | Chung–Lu directed, γ = 1.9, d̄ = 14 |
//! | IT-2004 (IT) | directed | *very skewed* out-degrees (γ ≈ 2.6) | Chung–Lu directed, γ = 2.6, d̄ = 25 |
//! | Twitter (TW) | directed | *flat* out-degrees (γ ≈ 1.3) | Chung–Lu directed, γ = 1.3, d̄ = 25 |
//! | UK-Union (UK) | directed | largest | Chung–Lu directed, γ = 2.0, d̄ = 15, 1.5× nodes |
//!
//! IT and TW deliberately share `n` and d̄ while differing only in γ —
//! reproducing the paper's motivating observation (Figure 1) that two
//! graphs of the same size can have wildly different SimRank hardness.

use prsim_gen::{chung_lu_directed, chung_lu_undirected, ChungLuConfig};
use prsim_graph::DiGraph;

/// A named benchmark dataset.
pub struct Dataset {
    /// Short name matching the paper's abbreviation (e.g. "DB").
    pub name: &'static str,
    /// "undirected" or "directed" (Table 3's type column).
    pub kind: &'static str,
    /// Target cumulative out-degree exponent γ of the generator.
    pub gamma: f64,
    /// The generated graph.
    pub graph: DiGraph,
}

/// Base node count of the accuracy datasets at `scale = 1`.
pub const ACCURACY_BASE_N: usize = 2_000;

/// The five Table 3 stand-ins at accuracy scale (`n ≈ 2000·scale`),
/// suitable for exact ground truth.
pub fn accuracy_datasets(scale: f64) -> Vec<Dataset> {
    let n = |base: usize| ((base as f64 * scale).round() as usize).max(50);
    vec![
        Dataset {
            name: "DB",
            kind: "undirected",
            gamma: 2.2,
            graph: chung_lu_undirected(ChungLuConfig::new(n(ACCURACY_BASE_N), 6.0, 2.2, 101)),
        },
        Dataset {
            name: "LJ",
            kind: "directed",
            gamma: 1.9,
            graph: chung_lu_directed(
                ChungLuConfig::new(n(ACCURACY_BASE_N), 14.0, 1.9, 102),
                2.2,
                202,
            ),
        },
        Dataset {
            name: "IT",
            kind: "directed",
            gamma: 2.6,
            graph: chung_lu_directed(
                ChungLuConfig::new(n(ACCURACY_BASE_N), 25.0, 2.6, 103),
                2.3,
                203,
            ),
        },
        Dataset {
            name: "TW",
            kind: "directed",
            gamma: 1.3,
            graph: chung_lu_directed(
                ChungLuConfig::new(n(ACCURACY_BASE_N), 25.0, 1.3, 104),
                1.8,
                204,
            ),
        },
        Dataset {
            name: "UK",
            kind: "directed",
            gamma: 2.0,
            graph: chung_lu_directed(
                ChungLuConfig::new(n(3 * ACCURACY_BASE_N / 2), 15.0, 2.0, 105),
                2.1,
                205,
            ),
        },
    ]
}

/// Large IT-like / TW-like pair for Figure 1's degree-distribution plot.
pub fn figure1_pair(scale: f64) -> (Dataset, Dataset) {
    let n = ((50_000.0 * scale).round() as usize).max(1_000);
    (
        Dataset {
            name: "IT-like",
            kind: "directed",
            gamma: 2.6,
            graph: chung_lu_directed(ChungLuConfig::new(n, 25.0, 2.6, 301), 2.3, 401),
        },
        Dataset {
            name: "TW-like",
            kind: "directed",
            gamma: 1.3,
            graph: chung_lu_directed(ChungLuConfig::new(n, 25.0, 1.3, 302), 1.8, 402),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use prsim_graph::degrees::{degree_sequence, powerlaw_exponent_ccdf_fit, DegreeKind};

    #[test]
    fn five_datasets_with_expected_shapes() {
        let ds = accuracy_datasets(0.5);
        assert_eq!(ds.len(), 5);
        let names: Vec<_> = ds.iter().map(|d| d.name).collect();
        assert_eq!(names, vec!["DB", "LJ", "IT", "TW", "UK"]);
        for d in &ds {
            assert!(d.graph.node_count() >= 50);
            assert!(d.graph.edge_count() > d.graph.node_count());
        }
        // UK is the biggest.
        assert!(ds[4].graph.node_count() > ds[0].graph.node_count());
    }

    #[test]
    fn it_is_more_skewed_than_tw() {
        let (it, tw) = figure1_pair(0.1);
        let it_deg = degree_sequence(&it.graph, DegreeKind::Out);
        let tw_deg = degree_sequence(&tw.graph, DegreeKind::Out);
        let it_gamma = powerlaw_exponent_ccdf_fit(&it_deg, 3).unwrap();
        let tw_gamma = powerlaw_exponent_ccdf_fit(&tw_deg, 3).unwrap();
        assert!(
            it_gamma > tw_gamma + 0.5,
            "IT γ = {it_gamma:.2} should exceed TW γ = {tw_gamma:.2}"
        );
        // Same order of n and m.
        assert_eq!(it.graph.node_count(), tw.graph.node_count());
    }
}
