//! Preprocessing benchmark: PRSim index construction (Algorithm 1) across
//! accuracy targets and hub counts, plus serialization round-trip cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prsim_core::{HubCount, Prsim, PrsimConfig, PrsimIndex};
use prsim_gen::{chung_lu_undirected, ChungLuConfig};

fn bench_build(c: &mut Criterion) {
    let g = chung_lu_undirected(ChungLuConfig::new(20_000, 10.0, 2.0, 21));
    let mut group = c.benchmark_group("index_build");
    group.sample_size(10);
    for &eps in &[0.25f64, 0.1, 0.05] {
        group.bench_with_input(BenchmarkId::new("eps", eps), &eps, |b, &eps| {
            b.iter(|| {
                Prsim::build(
                    g.clone(),
                    PrsimConfig {
                        eps,
                        ..Default::default()
                    },
                )
                .expect("valid config")
            });
        });
    }
    for &j0 in &[100usize, 1_000, 5_000] {
        group.bench_with_input(BenchmarkId::new("j0", j0), &j0, |b, &j0| {
            b.iter(|| {
                Prsim::build(
                    g.clone(),
                    PrsimConfig {
                        eps: 0.1,
                        hubs: HubCount::Fixed(j0),
                        ..Default::default()
                    },
                )
                .expect("valid config")
            });
        });
    }
    group.finish();
}

fn bench_serialization(c: &mut Criterion) {
    let g = chung_lu_undirected(ChungLuConfig::new(20_000, 10.0, 2.0, 22));
    let engine = Prsim::build(
        g,
        PrsimConfig {
            eps: 0.1,
            ..Default::default()
        },
    )
    .expect("valid config");
    let bytes = engine.index().to_bytes();
    let mut group = c.benchmark_group("index_serialization");
    group.bench_function("to_bytes", |b| b.iter(|| engine.index().to_bytes()));
    group.bench_function("from_bytes", |b| {
        b.iter(|| PrsimIndex::from_bytes(&bytes, engine.graph().node_count()).expect("round trip"))
    });
    group.finish();
}

criterion_group!(benches, bench_build, bench_serialization);
criterion_main!(benches);
