//! Ablation bench: Variance Bounded Backward Walk (Algorithm 3) vs the
//! simple backward walk (Algorithm 2) vs a ProbeSim-style full-scan probe,
//! plus the deterministic backward search used at index-build time.
//!
//! The paper's claim (§3.4, Figure 7a): VBBW visits only the
//! in-degree-bounded prefix of each out-list, so its cost tracks n·π(w)
//! rather than the out-degree volume a full-scan probe pays.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prsim_core::backward::backward_search;
use prsim_core::pagerank::{rank_by_pagerank, reverse_pagerank};
use prsim_core::vbbw::{simple_backward_walk, variance_bounded_backward_walk};
use prsim_gen::{chung_lu_undirected, ChungLuConfig};
use prsim_graph::ordering::sort_out_by_in_degree;
use prsim_graph::{DiGraph, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

const SQRT_C: f64 = 0.774_596_669_241_483_4;

fn graph() -> (DiGraph, Vec<NodeId>) {
    let mut g = chung_lu_undirected(ChungLuConfig::new(30_000, 12.0, 1.8, 7));
    sort_out_by_in_degree(&mut g);
    let pi = reverse_pagerank(&g, SQRT_C, 1e-9, 64);
    let order = rank_by_pagerank(&pi);
    // Median-π targets: representative non-hub nodes.
    let targets: Vec<NodeId> = order[order.len() / 2..].iter().copied().take(64).collect();
    (g, targets)
}

/// ProbeSim-style probe: full out-neighbor scans, no prefix cut.
fn full_scan_probe(g: &DiGraph, w: NodeId, level: usize) -> usize {
    let mut cur: HashMap<NodeId, f64> = HashMap::new();
    cur.insert(w, 1.0);
    let mut cost = 0usize;
    for _ in 0..level {
        let mut next: HashMap<NodeId, f64> = HashMap::new();
        for (&x, &s) in &cur {
            for &y in g.out_neighbors(x) {
                cost += 1;
                *next.entry(y).or_insert(0.0) += SQRT_C * s / g.in_degree(y) as f64;
            }
        }
        cur = next;
    }
    cost
}

fn bench_estimators(c: &mut Criterion) {
    let (g, targets) = graph();
    let mut group = c.benchmark_group("lhop_rppr_estimators");
    group.bench_function("vbbw", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        let mut i = 0usize;
        b.iter(|| {
            let w = targets[i % targets.len()];
            i += 1;
            variance_bounded_backward_walk(&g, SQRT_C, w, 4, &mut rng)
        });
    });
    group.bench_function("simple", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        let mut i = 0usize;
        b.iter(|| {
            let w = targets[i % targets.len()];
            i += 1;
            simple_backward_walk(&g, SQRT_C, w, 4, &mut rng)
        });
    });
    group.bench_function("full_scan_probe", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let w = targets[i % targets.len()];
            i += 1;
            full_scan_probe(&g, w, 4)
        });
    });
    group.finish();
}

fn bench_backward_search(c: &mut Criterion) {
    let (g, targets) = graph();
    let mut group = c.benchmark_group("backward_search");
    for r_max in [1e-2f64, 1e-3, 1e-4] {
        group.bench_with_input(BenchmarkId::from_parameter(r_max), &r_max, |b, &r_max| {
            let mut i = 0usize;
            b.iter(|| {
                let w = targets[i % targets.len()];
                i += 1;
                backward_search(&g, SQRT_C, w, r_max, 64)
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_estimators, bench_backward_search
}
criterion_main!(benches);
