//! Microbenchmarks of the inner kernels: √c-walk sampling, reverse
//! PageRank iteration and the counting-sort adjacency ordering.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prsim_core::pagerank::reverse_pagerank;
use prsim_core::walk::{sample_pair_meets, sample_terminal};
use prsim_gen::{chung_lu_undirected, ChungLuConfig};
use prsim_graph::ordering::sort_out_by_in_degree;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SQRT_C: f64 = 0.774_596_669_241_483_4;

fn bench_walks(c: &mut Criterion) {
    let g = chung_lu_undirected(ChungLuConfig::new(50_000, 10.0, 2.0, 1));
    let mut group = c.benchmark_group("walk");
    group.bench_function("sample_terminal", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        let mut u = 0u32;
        b.iter(|| {
            u = (u + 7919) % 50_000;
            sample_terminal(&g, SQRT_C, u, 64, &mut rng)
        });
    });
    group.bench_function("sample_pair_meets", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        let mut u = 0u32;
        b.iter(|| {
            u = (u + 7919) % 50_000;
            sample_pair_meets(&g, SQRT_C, u, 64, &mut rng)
        });
    });
    group.finish();
}

fn bench_pagerank(c: &mut Criterion) {
    let mut group = c.benchmark_group("reverse_pagerank");
    for n in [10_000usize, 50_000] {
        let g = chung_lu_undirected(ChungLuConfig::new(n, 10.0, 2.0, 4));
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| reverse_pagerank(g, SQRT_C, 1e-9, 64));
        });
    }
    group.finish();
}

fn bench_ordering(c: &mut Criterion) {
    let mut group = c.benchmark_group("counting_sort_adjacency");
    for n in [10_000usize, 50_000] {
        let g = chung_lu_undirected(ChungLuConfig::new(n, 10.0, 2.0, 5));
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter_batched(
                || g.clone(),
                |mut g| sort_out_by_in_degree(&mut g),
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_walks, bench_pagerank, bench_ordering
}
criterion_main!(benches);
