//! End-to-end single-source query benchmark: PRSim vs every baseline at
//! roughly matched accuracy settings on one power-law graph.

use criterion::{criterion_group, criterion_main, Criterion};
use prsim_baselines::{
    ProbeSim, ProbeSimConfig, Reads, ReadsConfig, SingleSourceSimRank, Sling, SlingConfig, TopSim,
    TopSimConfig, Tsf, TsfConfig,
};
use prsim_core::{PrsimConfig, QueryParams};
use prsim_eval::PrsimAlgo;
use prsim_gen::{chung_lu_undirected, ChungLuConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn bench_single_source(c: &mut Criterion) {
    let n = 20_000usize;
    let g = Arc::new(chung_lu_undirected(ChungLuConfig::new(n, 10.0, 2.0, 77)));
    let mut build_rng = StdRng::seed_from_u64(1);

    let prsim = PrsimAlgo::build(
        (*g).clone(),
        PrsimConfig {
            eps: 0.25,
            query: QueryParams::Practical { c_mult: 3.0 },
            ..Default::default()
        },
    )
    .expect("valid config");
    let probesim = ProbeSim::new(
        Arc::clone(&g),
        ProbeSimConfig {
            eps_a: 0.25,
            c_mult: 3.0,
            ..Default::default()
        },
    );
    let sling = Sling::build(
        Arc::clone(&g),
        SlingConfig {
            eps_a: 0.25,
            eta_samples: 200,
            ..Default::default()
        },
        &mut build_rng,
    );
    let tsf = Tsf::build(
        Arc::clone(&g),
        TsfConfig {
            rg: 100,
            rq: 20,
            ..Default::default()
        },
        &mut build_rng,
    );
    let reads = Reads::build(
        Arc::clone(&g),
        ReadsConfig {
            c: 0.6,
            r: 50,
            t: 5,
        },
        &mut build_rng,
    );
    let topsim = TopSim::new(
        Arc::clone(&g),
        TopSimConfig {
            depth: 3,
            degree_threshold: 100,
            ..Default::default()
        },
    );

    let algos: Vec<(&str, &dyn SingleSourceSimRank)> = vec![
        ("prsim", &prsim),
        ("probesim", &probesim),
        ("sling", &sling),
        ("tsf", &tsf),
        ("reads", &reads),
        ("topsim", &topsim),
    ];

    let mut group = c.benchmark_group("single_source_20k");
    group.sample_size(10);
    for (name, algo) in algos {
        group.bench_function(name, |b| {
            let mut rng = StdRng::seed_from_u64(9);
            let mut u = 0u32;
            b.iter(|| {
                u = (u + 4871) % n as u32;
                algo.single_source(u, &mut rng)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_single_source);
criterion_main!(benches);
