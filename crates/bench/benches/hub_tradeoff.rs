//! Ablation bench for the hub count j₀ (paper §3.3): query time as the
//! index grows from index-free (j₀ = 0) through the paper's √n default to
//! a full index (j₀ = n).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prsim_core::{HubCount, Prsim, PrsimConfig, QueryParams};
use prsim_gen::{chung_lu_undirected, ChungLuConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_hub_tradeoff(c: &mut Criterion) {
    let n = 20_000usize;
    let g = chung_lu_undirected(ChungLuConfig::new(n, 10.0, 1.8, 99));
    let sqrt_n = (n as f64).sqrt() as usize;

    let mut group = c.benchmark_group("hub_tradeoff");
    group.sample_size(10);
    for &j0 in &[0usize, sqrt_n, n / 10, n] {
        let engine = Prsim::build(
            g.clone(),
            PrsimConfig {
                eps: 0.25,
                hubs: HubCount::Fixed(j0),
                query: QueryParams::Practical { c_mult: 3.0 },
                ..Default::default()
            },
        )
        .expect("valid config");
        group.bench_with_input(BenchmarkId::from_parameter(j0), &engine, |b, engine| {
            let mut rng = StdRng::seed_from_u64(5);
            let mut u = 0u32;
            b.iter(|| {
                u = (u + 4871) % n as u32;
                engine.single_source(u, &mut rng)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hub_tradeoff);
criterion_main!(benches);
