//! Durable write-ahead log for the update stream.
//!
//! Every [`crate::EngineHost::update`] call appends one *record* — an
//! LSN-stamped [`EdgeUpdate`] batch — to the live segment and fsyncs it
//! before the caller is acknowledged, so an acknowledged batch survives
//! any crash (including SIGKILL mid-write). Restart replays the log
//! deterministically: the engine host re-applies every decodable record
//! through the exact incremental-repair path that produced the served
//! state, which makes the recovered engine bit-identical to the
//! pre-crash process (see the crate docs for the precise guarantee).
//!
//! All filesystem access goes through the injectable [`Storage`] layer
//! (see [`crate::storage`]): production uses the direct
//! [`FsStorage`] backend, while chaos tests
//! substitute [`FaultyStorage`](crate::fault::FaultyStorage) to inject
//! fsync failures, short writes, disk-full, read and rename errors.
//! A failed append *repairs its own tail*: the segment is truncated
//! back to its last known-good length before the error is returned, so
//! a record whose append errored — even one fully written but not
//! fsynced — can never survive to replay. If the repair itself fails,
//! the log marks itself broken and refuses further appends until
//! [`Wal::try_repair`] succeeds (the host drives that with exponential
//! backoff and serves read-only in the meantime).
//!
//! ## On-disk format
//!
//! A log directory holds numbered segment files plus checkpoint images:
//!
//! ```text
//! wal-0000000000.log     segments: header + records, append-only
//! wal-0000000001.log
//! ckpt-000000000000042.snap   checkpoint image taken at LSN 42
//! ```
//!
//! Each segment starts with a 20-byte header and carries length-prefixed,
//! checksummed records:
//!
//! | field | bytes | meaning |
//! |---|---|---|
//! | magic | 8 | `PRSIMWAL` |
//! | version | 4 | format version, little-endian `u32` (currently 1) |
//! | first_lsn | 8 | LSN of the segment's first record |
//!
//! | record field | bytes | meaning |
//! |---|---|---|
//! | len | 4 | body length in bytes, little-endian `u32` |
//! | lsn | 8 | record LSN, little-endian `u64`, strictly `prev + 1` |
//! | checksum | 8 | FNV-1a 64 over `lsn ‖ body` |
//! | body | len | `count: u32`, then `count × (op: u8, u: u32, v: u32)` |
//!
//! The checksum is FNV-1a (torn-write detection, not cryptography): a
//! crash can leave at most a prefix of the final record on disk, and any
//! such torn tail fails the length or checksum test. Replay truncates
//! the segment at the first invalid byte and discards any later
//! segments, so the surviving log is always the exact committed prefix.
//!
//! ## Checkpoints
//!
//! A checkpoint file freezes the applied state at one LSN: the merged
//! graph in the `PRSIMG1` binary format plus the serving hub index in
//! its v3 (`PRSIMIX3`) serialization — the same bytes `prsim build
//! --index` writes, so a checkpoint's index section is directly usable
//! by `prsim query --index`. Checkpoints are written to a temp file,
//! fsynced and atomically renamed into place; recovery starts from the
//! newest *valid* checkpoint and replays only the WAL suffix behind it.
//! Segments wholly covered by a checkpoint are garbage-collected.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use prsim_graph::{DiGraph, EdgeUpdate};

use crate::storage::{FsStorage, Storage, WalFile};

/// Magic bytes opening every WAL segment.
const SEGMENT_MAGIC: &[u8; 8] = b"PRSIMWAL";

/// Magic bytes opening every checkpoint image.
const CHECKPOINT_MAGIC: &[u8; 8] = b"PRSIMCKP";

/// Current format version of segments and checkpoints alike.
const FORMAT_VERSION: u32 = 1;

/// Segment header size: magic + version + first_lsn.
const SEGMENT_HEADER: usize = 8 + 4 + 8;

/// Record header size: len + lsn + checksum.
const RECORD_HEADER: usize = 4 + 8 + 8;

/// Per-update encoding width inside a record body: op + two node ids.
const UPDATE_BYTES: usize = 1 + 4 + 4;

/// Hard ceiling on one record's body (64 MiB ≈ 7.4M updates): anything
/// larger in a length prefix is treated as corruption, which bounds the
/// allocation a hostile or torn length field can cause.
const MAX_RECORD_BODY: usize = 64 << 20;

/// One durable record: an LSN-stamped batch of edge updates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalRecord {
    /// Log sequence number (1-based, gap-free within one log).
    pub lsn: u64,
    /// The batch, applied in order under this single LSN.
    pub updates: Vec<EdgeUpdate>,
}

/// FNV-1a 64-bit checksum (torn-write detection only).
fn fnv1a64(chunks: &[&[u8]]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for chunk in chunks {
        for &b in *chunk {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Encodes a record body: update count + per-update triples.
pub fn encode_body(updates: &[EdgeUpdate]) -> Vec<u8> {
    let mut body = Vec::with_capacity(4 + updates.len() * UPDATE_BYTES);
    body.extend_from_slice(&(updates.len() as u32).to_le_bytes());
    for up in updates {
        let (u, v) = up.endpoints();
        body.push(if up.is_insert() { 0 } else { 1 });
        body.extend_from_slice(&u.to_le_bytes());
        body.extend_from_slice(&v.to_le_bytes());
    }
    body
}

/// The exact number of log bytes one batch occupies as a record
/// (header + body). Used by the host's queue-bytes admission control so
/// the memory bound tracks what the WAL and applier actually hold.
pub fn encoded_len(updates: &[EdgeUpdate]) -> usize {
    RECORD_HEADER + 4 + updates.len() * UPDATE_BYTES
}

/// Decodes a record body; rejects unknown ops, bad counts and trailing
/// bytes (all of which replay treats as corruption).
pub fn decode_body(body: &[u8]) -> Result<Vec<EdgeUpdate>, String> {
    if body.len() < 4 {
        return Err("body shorter than its count field".into());
    }
    let count = u32::from_le_bytes(body[..4].try_into().expect("4 bytes")) as usize;
    let want = 4 + count * UPDATE_BYTES;
    if body.len() != want {
        return Err(format!(
            "body length {} does not match count {count} (want {want})",
            body.len()
        ));
    }
    let mut updates = Vec::with_capacity(count);
    for chunk in body[4..].chunks_exact(UPDATE_BYTES) {
        let u = u32::from_le_bytes(chunk[1..5].try_into().expect("4 bytes"));
        let v = u32::from_le_bytes(chunk[5..9].try_into().expect("4 bytes"));
        updates.push(match chunk[0] {
            0 => EdgeUpdate::Insert(u, v),
            1 => EdgeUpdate::Delete(u, v),
            op => return Err(format!("unknown update op byte {op}")),
        });
    }
    Ok(updates)
}

/// What [`Wal::open`] recovered from a log directory.
#[derive(Debug, Default)]
pub struct ReplayOutcome {
    /// Every decodable record with `lsn > start_lsn`, in LSN order.
    pub records: Vec<WalRecord>,
    /// Records skipped because a checkpoint already covers them.
    pub skipped_records: usize,
    /// Bytes cut off the log by torn-tail / corrupt-record repair.
    pub truncated_bytes: u64,
    /// Whole later segments discarded after a mid-log corruption.
    pub dropped_segments: usize,
    /// Stale temp files (a crash between create and rename) swept from
    /// the log directory at open.
    pub swept_tmp_files: usize,
}

/// Live statistics of one [`Wal`] (folded into `ServerStats`).
#[derive(Clone, Copy, Debug, Default)]
pub struct WalStats {
    /// Total bytes across all live segment files.
    pub bytes: u64,
    /// Live segment files.
    pub segments: usize,
    /// Records fsynced by this process.
    pub syncs: u64,
    /// Next LSN to be assigned.
    pub next_lsn: u64,
    /// Appends that returned an error (each repaired or marked broken).
    pub failed_appends: u64,
}

/// An open write-ahead log: one append-only live segment plus rotation
/// and checkpoint bookkeeping over the log directory.
pub struct Wal {
    dir: PathBuf,
    storage: Arc<dyn Storage>,
    /// Rotation threshold: a segment exceeding this many bytes is sealed
    /// and a fresh one opened for the next record.
    segment_bytes: u64,
    file: Box<dyn WalFile>,
    segment_seq: u64,
    /// Known-good length of the live segment — the truncation target
    /// when an append fails partway.
    segment_len: u64,
    next_lsn: u64,
    total_bytes: u64,
    syncs: u64,
    failed_appends: u64,
    /// `Some(reason)` once a failed append could not be repaired; the
    /// log refuses further appends until [`Wal::try_repair`] succeeds.
    broken: Option<String>,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("dir", &self.dir)
            .field("segment_bytes", &self.segment_bytes)
            .field("segment_seq", &self.segment_seq)
            .field("segment_len", &self.segment_len)
            .field("next_lsn", &self.next_lsn)
            .field("total_bytes", &self.total_bytes)
            .field("broken", &self.broken)
            .finish_non_exhaustive()
    }
}

pub(crate) fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq:010}.log"))
}

pub(crate) fn checkpoint_path(dir: &Path, lsn: u64) -> PathBuf {
    dir.join(format!("ckpt-{lsn:015}.snap"))
}

/// Sorted `(seq, path)` list of the directory's segment files.
pub(crate) fn list_segments(storage: &dyn Storage, dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for path in storage.list(dir)? {
        let Some(name) = path.file_name().map(|n| n.to_string_lossy().into_owned()) else {
            continue;
        };
        if let Some(seq) = name
            .strip_prefix("wal-")
            .and_then(|rest| rest.strip_suffix(".log"))
            .and_then(|digits| digits.parse::<u64>().ok())
        {
            out.push((seq, path));
        }
    }
    out.sort();
    Ok(out)
}

/// Sorted `(lsn, path)` list of the directory's checkpoint files.
pub(crate) fn list_checkpoints(
    storage: &dyn Storage,
    dir: &Path,
) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for path in storage.list(dir)? {
        let Some(name) = path.file_name().map(|n| n.to_string_lossy().into_owned()) else {
            continue;
        };
        if let Some(lsn) = name
            .strip_prefix("ckpt-")
            .and_then(|rest| rest.strip_suffix(".snap"))
            .and_then(|digits| digits.parse::<u64>().ok())
        {
            out.push((lsn, path));
        }
    }
    out.sort();
    Ok(out)
}

fn corrupt(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

impl Wal {
    /// Opens (or creates) the log in `dir` on the real filesystem. See
    /// [`Wal::open_with_storage`].
    pub fn open(
        dir: impl Into<PathBuf>,
        segment_bytes: u64,
        start_lsn: u64,
    ) -> io::Result<(Wal, ReplayOutcome)> {
        Wal::open_with_storage(Arc::new(FsStorage), dir, segment_bytes, start_lsn)
    }

    /// Opens (or creates) the log in `dir` on the given storage backend,
    /// replaying every committed record with `lsn > start_lsn` (pass the
    /// recovery checkpoint's LSN, or 0 for a full replay). Torn tails
    /// are truncated in place; a corrupt record additionally drops all
    /// later segments, so the log that remains on disk is exactly the
    /// replayed prefix. After replay the log is positioned to append the
    /// next record.
    pub fn open_with_storage(
        storage: Arc<dyn Storage>,
        dir: impl Into<PathBuf>,
        segment_bytes: u64,
        start_lsn: u64,
    ) -> io::Result<(Wal, ReplayOutcome)> {
        let dir = dir.into();
        storage.create_dir_all(&dir)?;
        let mut outcome = ReplayOutcome::default();
        // Sweep temp debris left by a crash between create and rename
        // (checkpoint images are written as `*.tmp.<pid>` first). An
        // unrenamed temp can never be loaded, but it squats on disk
        // forever and a PID-reusing successor could collide with it.
        for path in storage.list(&dir)? {
            let name = path.file_name().map(|n| n.to_string_lossy().into_owned());
            if name.is_some_and(|n| n.contains(".tmp.")) {
                storage.remove_file(&path)?;
                outcome.swept_tmp_files += 1;
            }
        }
        let segments = list_segments(storage.as_ref(), &dir)?;
        let mut next_lsn: u64 = start_lsn + 1;
        let mut poisoned = false;

        for (i, (seq, path)) in segments.iter().enumerate() {
            if poisoned {
                // A corrupt record invalidates everything behind it: later
                // segments would leave an LSN gap, so they are dropped.
                storage.remove_file(path)?;
                outcome.dropped_segments += 1;
                continue;
            }
            let data = storage.read(path)?;
            let consumed = replay_segment(&data, *seq, &mut next_lsn, start_lsn, &mut outcome)?;
            if consumed < data.len() {
                // Torn tail or corrupt record: repair the file so a
                // subsequent open sees a clean log.
                outcome.truncated_bytes += (data.len() - consumed) as u64;
                storage.truncate(path, consumed as u64)?;
                if i + 1 < segments.len() {
                    poisoned = true;
                }
            }
        }

        // Append position: reuse the newest surviving segment, or start a
        // fresh one. (A repaired segment shrunk to its header alone is
        // still appendable — its first_lsn matters only for records it
        // actually holds.)
        let (segment_seq, file, segment_len) = match list_segments(storage.as_ref(), &dir)?.last() {
            Some((seq, path)) => {
                let file = storage.open_append(path)?;
                let len = storage.file_len(path)?;
                (*seq, file, len)
            }
            None => {
                let (file, len) = create_segment(storage.as_ref(), &dir, 0, next_lsn)?;
                (0, file, len)
            }
        };
        let total_bytes = list_segments(storage.as_ref(), &dir)?
            .iter()
            .map(|(_, p)| storage.file_len(p).unwrap_or(0))
            .sum();

        Ok((
            Wal {
                dir,
                storage,
                segment_bytes: segment_bytes.max(SEGMENT_HEADER as u64 + 1),
                file,
                segment_seq,
                segment_len,
                next_lsn,
                total_bytes,
                syncs: 0,
                failed_appends: 0,
                broken: None,
            },
            outcome,
        ))
    }

    /// Appends one batch as a single record, fsyncs it, and returns its
    /// LSN. The batch is durable when this returns `Ok`. On `Err` the
    /// batch is *not* committed: the segment tail is truncated back to
    /// its pre-append length, so the failed record can never replay. If
    /// even that repair fails, the log flips to
    /// [broken](Wal::broken_reason) and rejects appends until
    /// [`Wal::try_repair`] succeeds.
    pub fn append(&mut self, updates: &[EdgeUpdate]) -> io::Result<u64> {
        if let Some(reason) = &self.broken {
            return Err(io::Error::other(format!("wal unavailable: {reason}")));
        }
        let lsn = self.next_lsn;
        let body = encode_body(updates);
        let record_len = (RECORD_HEADER + body.len()) as u64;
        if self.segment_len > SEGMENT_HEADER as u64
            && self.segment_len + record_len > self.segment_bytes
        {
            // Rotation failure leaves the sealed segment untouched and
            // nothing written, so there is no tail to repair.
            if let Err(err) = self.rotate() {
                self.failed_appends += 1;
                return Err(err);
            }
        }
        let lsn_le = lsn.to_le_bytes();
        let checksum = fnv1a64(&[&lsn_le, &body]);
        let mut buf = Vec::with_capacity(RECORD_HEADER + body.len());
        buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
        buf.extend_from_slice(&lsn_le);
        buf.extend_from_slice(&checksum.to_le_bytes());
        buf.extend_from_slice(&body);
        let written = self
            .file
            .write_all(&buf)
            .and_then(|()| self.file.sync_data());
        match written {
            Ok(()) => {
                self.syncs += 1;
                self.segment_len += record_len;
                self.total_bytes += record_len;
                self.next_lsn += 1;
                Ok(lsn)
            }
            Err(err) => {
                // The failure may have left anything from nothing to the
                // complete record on disk (an fsync error fires *after* a
                // successful write). Cut the tail back so the errored
                // record cannot survive to replay.
                self.failed_appends += 1;
                let path = segment_path(&self.dir, self.segment_seq);
                if let Err(repair) = self.storage.truncate(&path, self.segment_len) {
                    self.broken = Some(format!(
                        "append failed ({err}) and tail repair failed ({repair})"
                    ));
                }
                Err(err)
            }
        }
    }

    /// `Some(reason)` when a failed append could not be repaired and the
    /// log is refusing writes.
    pub fn broken_reason(&self) -> Option<&str> {
        self.broken.as_deref()
    }

    /// Retries the tail repair of a [broken](Wal::broken_reason) log.
    /// On success the log accepts appends again, positioned exactly
    /// after its last committed record. No-op on a healthy log.
    pub fn try_repair(&mut self) -> io::Result<()> {
        if self.broken.is_none() {
            return Ok(());
        }
        let path = segment_path(&self.dir, self.segment_seq);
        self.storage.truncate(&path, self.segment_len)?;
        self.broken = None;
        Ok(())
    }

    /// Seals the live segment and opens the next one.
    fn rotate(&mut self) -> io::Result<()> {
        self.file.sync_all()?;
        let seq = self.segment_seq + 1;
        match create_segment(self.storage.as_ref(), &self.dir, seq, self.next_lsn) {
            Ok((file, len)) => {
                self.segment_seq = seq;
                self.file = file;
                self.segment_len = len;
                self.total_bytes += len;
                Ok(())
            }
            Err(err) => {
                // A half-created segment (torn header) would poison the
                // replay of every later segment; remove it before
                // reporting the failure so the next append can retry the
                // rotation cleanly.
                let _ = self.storage.remove_file(&segment_path(&self.dir, seq));
                Err(err)
            }
        }
    }

    /// Writes a checkpoint image of the applied state at `lsn` (the
    /// merged graph plus the serving index's v3 bytes), atomically via
    /// temp-file + rename, then garbage-collects segments and older
    /// checkpoints the new image fully covers. Returns the image size.
    pub fn write_checkpoint(
        &mut self,
        lsn: u64,
        graph: &DiGraph,
        index_bytes: &[u8],
    ) -> io::Result<u64> {
        let graph_bytes = prsim_graph::io::to_binary(graph);
        let mut payload = Vec::with_capacity(8 + 2 * 8 + graph_bytes.len() + index_bytes.len());
        payload.extend_from_slice(&lsn.to_le_bytes());
        payload.extend_from_slice(&(graph_bytes.len() as u64).to_le_bytes());
        payload.extend_from_slice(&graph_bytes);
        payload.extend_from_slice(&(index_bytes.len() as u64).to_le_bytes());
        payload.extend_from_slice(index_bytes);
        let checksum = fnv1a64(&[&payload]);

        let final_path = checkpoint_path(&self.dir, lsn);
        let tmp_path = final_path.with_extension(format!("tmp.{}", std::process::id()));
        let written = (|| -> io::Result<()> {
            let mut f = self.storage.create(&tmp_path)?;
            f.write_all(CHECKPOINT_MAGIC)?;
            f.write_all(&FORMAT_VERSION.to_le_bytes())?;
            f.write_all(&checksum.to_le_bytes())?;
            f.write_all(&payload)?;
            f.sync_all()
        })();
        if let Err(err) = written {
            // The half-written image was never renamed into place, so it
            // can never be loaded; remove the debris and report.
            let _ = self.storage.remove_file(&tmp_path);
            return Err(err);
        }
        self.storage.rename(&tmp_path, &final_path)?;
        if let Err(err) = self.storage.sync_dir(&self.dir) {
            // The rename is not durable until the directory is synced: a
            // crash could resurface the old directory state. Un-publish
            // the image (remove_file is the reliable repair surface) so
            // the visible-checkpoint set never depends on an unsynced
            // rename, then report the failure for retry.
            let _ = self.storage.remove_file(&final_path);
            return Err(err);
        }
        if let Err(err) = self.gc(lsn) {
            // The image is durable; deferred collection only costs disk.
            eprintln!("wal: checkpoint gc deferred: {err}");
        }
        Ok((8 + 4 + 8 + payload.len()) as u64)
    }

    /// Garbage collection after a checkpoint at `lsn`. The newest *older*
    /// image is retained as a bit-rot fallback (anything older goes), and
    /// segments are deleted only back to that fallback's horizon — so
    /// recovery from the fallback can still replay to the tip. A segment
    /// is provably covered when the *next* segment's `first_lsn` is within
    /// the horizon.
    fn gc(&mut self, lsn: u64) -> io::Result<()> {
        let checkpoints = list_checkpoints(self.storage.as_ref(), &self.dir)?;
        let fallback = checkpoints
            .iter()
            .map(|&(l, _)| l)
            .filter(|&l| l < lsn)
            .max();
        for (ck_lsn, path) in &checkpoints {
            if *ck_lsn < lsn && Some(*ck_lsn) != fallback {
                self.storage.remove_file(path)?;
            }
        }
        let horizon = fallback.unwrap_or(lsn);
        let segments = list_segments(self.storage.as_ref(), &self.dir)?;
        for window in segments.windows(2) {
            let (seq, path) = &window[0];
            let (_, next_path) = &window[1];
            if *seq == self.segment_seq {
                break; // never delete the live segment
            }
            let next_first = read_segment_first_lsn(self.storage.as_ref(), next_path)?;
            if next_first <= horizon + 1 {
                let len = self.storage.file_len(path).unwrap_or(0);
                self.storage.remove_file(path)?;
                self.total_bytes = self.total_bytes.saturating_sub(len);
            } else {
                break;
            }
        }
        // GC removals are advisory until synced; a failure here surfaces
        // as a deferred-gc warning at the caller and is retried by the
        // next checkpoint.
        self.storage.sync_dir(&self.dir)?;
        Ok(())
    }

    /// The live (append) segment's sequence number and known-good byte
    /// length — the scrubber's boundary between cold, fully-sealed
    /// bytes it may verify at rest and the tail this process is still
    /// appending to.
    pub(crate) fn live_segment(&self) -> (u64, u64) {
        (self.segment_seq, self.segment_len)
    }

    /// Live log statistics.
    pub fn stats(&self) -> WalStats {
        WalStats {
            bytes: self.total_bytes,
            segments: list_segments(self.storage.as_ref(), &self.dir)
                .map(|s| s.len())
                .unwrap_or(0),
            syncs: self.syncs,
            next_lsn: self.next_lsn,
            failed_appends: self.failed_appends,
        }
    }
}

/// Creates segment `seq` with its header written and fsynced; returns
/// the open handle and the header length.
fn create_segment(
    storage: &dyn Storage,
    dir: &Path,
    seq: u64,
    first_lsn: u64,
) -> io::Result<(Box<dyn WalFile>, u64)> {
    let path = segment_path(dir, seq);
    let mut file = storage.create_new(&path)?;
    file.write_all(SEGMENT_MAGIC)?;
    file.write_all(&FORMAT_VERSION.to_le_bytes())?;
    file.write_all(&first_lsn.to_le_bytes())?;
    file.sync_all()?;
    // The segment's directory entry must be durable before any record in
    // it is acknowledged; callers treat a failure like any other failed
    // creation (rotate removes the half-registered segment and retries).
    storage.sync_dir(dir)?;
    Ok((file, SEGMENT_HEADER as u64))
}

/// Reads a segment's `first_lsn` header field.
pub(crate) fn read_segment_first_lsn(storage: &dyn Storage, path: &Path) -> io::Result<u64> {
    let header = storage.read_prefix(path, SEGMENT_HEADER)?;
    if &header[..8] != SEGMENT_MAGIC {
        return Err(corrupt(format!(
            "{} has a bad segment magic",
            path.display()
        )));
    }
    Ok(u64::from_le_bytes(
        header[12..20].try_into().expect("8 bytes"),
    ))
}

/// Replays one segment's bytes, pushing decodable records onto
/// `outcome`. Returns the number of bytes consumed; anything shorter
/// than `data.len()` means the caller must truncate there. A non-WAL
/// file (bad magic or version) is an error — it is user data this module
/// must not repair away.
fn replay_segment(
    data: &[u8],
    seq: u64,
    next_lsn: &mut u64,
    start_lsn: u64,
    outcome: &mut ReplayOutcome,
) -> io::Result<usize> {
    if data.len() < SEGMENT_HEADER {
        // A segment torn inside its own header can only be the freshly
        // rotated tail of the log: empty of records, safe to truncate.
        return Ok(0);
    }
    if &data[..8] != SEGMENT_MAGIC {
        return Err(corrupt(format!("segment {seq} has a bad magic")));
    }
    let version = u32::from_le_bytes(data[8..12].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(corrupt(format!(
            "segment {seq} has unsupported version {version}"
        )));
    }
    let mut pos = SEGMENT_HEADER;
    loop {
        let Some(header) = data.get(pos..pos + RECORD_HEADER) else {
            return Ok(pos); // torn inside a record header
        };
        let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes")) as usize;
        if len > MAX_RECORD_BODY {
            return Ok(pos); // corrupt length field
        }
        let lsn = u64::from_le_bytes(header[4..12].try_into().expect("8 bytes"));
        let checksum = u64::from_le_bytes(header[12..20].try_into().expect("8 bytes"));
        let Some(body) = data.get(pos + RECORD_HEADER..pos + RECORD_HEADER + len) else {
            return Ok(pos); // torn inside the body
        };
        if fnv1a64(&[&lsn.to_le_bytes(), body]) != checksum {
            return Ok(pos); // bit rot or a torn overwrite
        }
        let Ok(updates) = decode_body(body) else {
            return Ok(pos);
        };
        if lsn <= start_lsn {
            // Covered by the recovery checkpoint; already applied.
            outcome.skipped_records += 1;
        } else if lsn == *next_lsn {
            outcome.records.push(WalRecord { lsn, updates });
            *next_lsn += 1;
        } else {
            return Ok(pos); // LSN discontinuity: treat as corruption
        }
        pos += RECORD_HEADER + len;
    }
}

/// Scrub-verifies `upto` bytes of a sealed segment: header magic and
/// version, then every record's framing, checksum and intra-segment LSN
/// contiguity. Contiguity is anchored at the *first record's* LSN, not
/// the header `first_lsn` — a truncate repair can legitimately leave a
/// header whose `first_lsn` names a record that no longer exists.
/// Returns the bytes verified; `Err` describes the first rot found. The
/// segment is clean only if every byte up to `upto` parses (a cold
/// segment has no torn tail to excuse).
pub(crate) fn verify_segment_bytes(data: &[u8], upto: usize) -> Result<u64, String> {
    let data = data.get(..upto).ok_or_else(|| {
        format!(
            "segment shorter ({}) than expected {upto} bytes",
            data.len()
        )
    })?;
    if data.len() < SEGMENT_HEADER {
        return Err(format!(
            "segment header truncated ({} of {SEGMENT_HEADER} bytes)",
            data.len()
        ));
    }
    if &data[..8] != SEGMENT_MAGIC {
        return Err("bad segment magic".into());
    }
    let version = u32::from_le_bytes(data[8..12].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(format!("unsupported segment version {version}"));
    }
    let mut pos = SEGMENT_HEADER;
    let mut expect_lsn: Option<u64> = None;
    while pos < data.len() {
        let Some(header) = data.get(pos..pos + RECORD_HEADER) else {
            return Err(format!("record header torn at byte {pos}"));
        };
        let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes")) as usize;
        if len > MAX_RECORD_BODY {
            return Err(format!("record at byte {pos} has corrupt length {len}"));
        }
        let lsn = u64::from_le_bytes(header[4..12].try_into().expect("8 bytes"));
        let checksum = u64::from_le_bytes(header[12..20].try_into().expect("8 bytes"));
        let Some(body) = data.get(pos + RECORD_HEADER..pos + RECORD_HEADER + len) else {
            return Err(format!("record body torn at byte {pos}"));
        };
        if fnv1a64(&[&lsn.to_le_bytes(), body]) != checksum {
            return Err(format!("checksum mismatch at byte {pos} (lsn {lsn})"));
        }
        if let Err(e) = decode_body(body) {
            return Err(format!("undecodable body at byte {pos} (lsn {lsn}): {e}"));
        }
        if let Some(expect) = expect_lsn {
            if lsn != expect {
                return Err(format!("lsn gap at byte {pos}: found {lsn}, want {expect}"));
            }
        }
        expect_lsn = Some(lsn + 1);
        pos += RECORD_HEADER + len;
    }
    Ok(pos as u64)
}

/// A recovered checkpoint image.
#[derive(Debug)]
pub struct Checkpoint {
    /// LSN the image was taken at (replay resumes after it).
    pub lsn: u64,
    /// The merged graph at that LSN.
    pub graph: DiGraph,
    /// The serving index's v3 serialization at that LSN.
    pub index_bytes: Vec<u8>,
}

/// Loads the newest checkpoint in `dir` that decodes and checksums
/// cleanly, via the real filesystem. See
/// [`latest_checkpoint_with_storage`].
pub fn latest_checkpoint(dir: &Path) -> io::Result<Option<Checkpoint>> {
    latest_checkpoint_with_storage(&FsStorage, dir)
}

/// Loads the newest checkpoint in `dir` that decodes and checksums
/// cleanly (corrupt, torn, or unreadable images are skipped — an older
/// image plus a longer replay is always a sound fallback). `Ok(None)`
/// when none exists.
pub fn latest_checkpoint_with_storage(
    storage: &dyn Storage,
    dir: &Path,
) -> io::Result<Option<Checkpoint>> {
    if !storage.exists(dir) {
        return Ok(None);
    }
    for (lsn, path) in list_checkpoints(storage, dir)?.into_iter().rev() {
        match read_checkpoint(storage, &path) {
            Ok(ckpt) => {
                debug_assert_eq!(ckpt.lsn, lsn, "file name vs payload LSN");
                return Ok(Some(ckpt));
            }
            Err(err) => {
                eprintln!("wal: skipping corrupt checkpoint {}: {err}", path.display());
            }
        }
    }
    Ok(None)
}

pub(crate) fn read_checkpoint(storage: &dyn Storage, path: &Path) -> io::Result<Checkpoint> {
    let data = storage.read(path)?;
    if data.len() < 8 + 4 + 8 || &data[..8] != CHECKPOINT_MAGIC {
        return Err(corrupt("bad checkpoint magic or truncated header"));
    }
    let version = u32::from_le_bytes(data[8..12].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(corrupt(format!("unsupported checkpoint version {version}")));
    }
    let checksum = u64::from_le_bytes(data[12..20].try_into().expect("8 bytes"));
    let payload = &data[20..];
    if fnv1a64(&[payload]) != checksum {
        return Err(corrupt("checkpoint checksum mismatch"));
    }
    if payload.len() < 16 {
        return Err(corrupt("checkpoint payload truncated"));
    }
    let lsn = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
    let graph_len = u64::from_le_bytes(payload[8..16].try_into().expect("8 bytes")) as usize;
    let rest = &payload[16..];
    if rest.len() < graph_len + 8 {
        return Err(corrupt("checkpoint graph section truncated"));
    }
    let graph = prsim_graph::io::from_binary(&rest[..graph_len])
        .map_err(|e| corrupt(format!("checkpoint graph: {e}")))?;
    let idx_len =
        u64::from_le_bytes(rest[graph_len..graph_len + 8].try_into().expect("8 bytes")) as usize;
    let index_bytes = rest[graph_len + 8..].to_vec();
    if index_bytes.len() != idx_len {
        return Err(corrupt("checkpoint index section truncated"));
    }
    Ok(Checkpoint {
        lsn,
        graph,
        index_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, FaultyStorage};
    use prsim_graph::EdgeUpdate::{Delete, Insert};
    use std::fs::{self, OpenOptions};

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("prsim_wal_test_{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn batches() -> Vec<Vec<EdgeUpdate>> {
        vec![
            vec![Insert(0, 1)],
            vec![Delete(0, 1), Insert(2, 3)],
            vec![],
            vec![Insert(7, 8), Insert(8, 7), Delete(2, 3)],
        ]
    }

    #[test]
    fn append_replay_round_trip() {
        let dir = tmpdir("round_trip");
        let mut lsns = Vec::new();
        {
            let (mut wal, outcome) = Wal::open(&dir, 1 << 20, 0).unwrap();
            assert!(outcome.records.is_empty());
            for batch in batches() {
                lsns.push(wal.append(&batch).unwrap());
            }
        }
        assert_eq!(lsns, vec![1, 2, 3, 4]);
        let (wal, outcome) = Wal::open(&dir, 1 << 20, 0).unwrap();
        assert_eq!(outcome.records.len(), 4);
        assert_eq!(outcome.truncated_bytes, 0);
        for (record, (lsn, batch)) in outcome.records.iter().zip(lsns.iter().zip(batches())) {
            assert_eq!(record.lsn, *lsn);
            assert_eq!(record.updates, batch);
        }
        assert_eq!(wal.stats().next_lsn, 5);
    }

    #[test]
    fn rotation_splits_segments_and_replay_spans_them() {
        let dir = tmpdir("rotation");
        {
            // Tiny threshold: every record rotates into its own segment.
            let (mut wal, _) = Wal::open(&dir, 40, 0).unwrap();
            for i in 0..5u32 {
                wal.append(&[Insert(i, i + 1)]).unwrap();
            }
            assert!(wal.stats().segments >= 4, "rotation must split segments");
        }
        let (_, outcome) = Wal::open(&dir, 40, 0).unwrap();
        assert_eq!(outcome.records.len(), 5);
        assert_eq!(outcome.records.last().unwrap().updates, vec![Insert(4, 5)]);
    }

    #[test]
    fn torn_tail_is_truncated_and_acknowledged_prefix_survives() {
        let dir = tmpdir("torn_tail");
        {
            let (mut wal, _) = Wal::open(&dir, 1 << 20, 0).unwrap();
            for batch in batches() {
                wal.append(&batch).unwrap();
            }
        }
        // Simulate a crash mid-write: append a partial record.
        let seg = segment_path(&dir, 0);
        let mut f = OpenOptions::new().append(true).open(&seg).unwrap();
        std::io::Write::write_all(&mut f, &[0x21, 0x00, 0x00, 0x00, 0xAA, 0xBB]).unwrap();
        drop(f);
        let before = fs::metadata(&seg).unwrap().len();

        let (mut wal, outcome) = Wal::open(&dir, 1 << 20, 0).unwrap();
        assert_eq!(outcome.records.len(), 4, "committed prefix survives");
        assert_eq!(outcome.truncated_bytes, 6);
        assert!(fs::metadata(&seg).unwrap().len() < before, "file repaired");
        // The repaired log keeps accepting appends with contiguous LSNs.
        assert_eq!(wal.append(&[Insert(9, 9)]).unwrap(), 5);
    }

    #[test]
    fn corrupt_checksum_truncates_and_drops_later_segments() {
        let dir = tmpdir("corrupt_mid");
        {
            let (mut wal, _) = Wal::open(&dir, 40, 0).unwrap();
            for i in 0..4u32 {
                wal.append(&[Insert(i, i + 1)]).unwrap();
            }
        }
        let segments = list_segments(&FsStorage, &dir).unwrap();
        assert!(segments.len() >= 3);
        // Flip a body byte of the second segment's record.
        let (_, victim) = &segments[1];
        let mut bytes = fs::read(victim).unwrap();
        let at = bytes.len() - 1;
        bytes[at] ^= 0xFF;
        fs::write(victim, &bytes).unwrap();

        let (mut wal, outcome) = Wal::open(&dir, 40, 0).unwrap();
        assert_eq!(outcome.records.len(), 1, "only the pre-corruption prefix");
        assert!(outcome.truncated_bytes > 0);
        assert!(outcome.dropped_segments >= 1, "later segments dropped");
        // The log stays usable and LSNs continue from the surviving prefix.
        assert_eq!(wal.append(&[Insert(8, 9)]).unwrap(), 2);
        let (_, outcome) = Wal::open(&dir, 40, 0).unwrap();
        assert_eq!(outcome.records.len(), 2);
    }

    #[test]
    fn lsn_discontinuity_is_treated_as_corruption() {
        let dir = tmpdir("lsn_gap");
        {
            let (mut wal, _) = Wal::open(&dir, 1 << 20, 0).unwrap();
            wal.append(&[Insert(0, 1)]).unwrap();
            wal.append(&[Insert(1, 2)]).unwrap();
        }
        // Rewrite record 2's LSN to 7 (with a valid checksum!): replay
        // must still refuse the gap.
        let seg = segment_path(&dir, 0);
        let data = fs::read(&seg).unwrap();
        let first_len =
            u32::from_le_bytes(data[SEGMENT_HEADER..SEGMENT_HEADER + 4].try_into().unwrap())
                as usize;
        let second = SEGMENT_HEADER + RECORD_HEADER + first_len;
        let body_len = u32::from_le_bytes(data[second..second + 4].try_into().unwrap()) as usize;
        let body = data[second + RECORD_HEADER..second + RECORD_HEADER + body_len].to_vec();
        let mut patched = data.clone();
        let fake_lsn = 7u64.to_le_bytes();
        patched[second + 4..second + 12].copy_from_slice(&fake_lsn);
        let fixed = fnv1a64(&[&fake_lsn, &body]);
        patched[second + 12..second + 20].copy_from_slice(&fixed.to_le_bytes());
        fs::write(&seg, &patched).unwrap();

        let (_, outcome) = Wal::open(&dir, 1 << 20, 0).unwrap();
        assert_eq!(outcome.records.len(), 1, "gap record rejected");
    }

    #[test]
    fn checkpoint_round_trip_and_gc() {
        let dir = tmpdir("checkpoint");
        let graph = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let index_bytes = vec![1u8, 2, 3, 4, 5];
        {
            let (mut wal, _) = Wal::open(&dir, 40, 0).unwrap();
            for i in 0..4u32 {
                wal.append(&[Insert(i, (i + 2) % 4)]).unwrap();
            }
            let segments_before = wal.stats().segments;
            wal.write_checkpoint(4, &graph, &index_bytes).unwrap();
            assert!(
                wal.stats().segments < segments_before,
                "covered segments collected"
            );
        }
        let ckpt = latest_checkpoint(&dir).unwrap().expect("checkpoint exists");
        assert_eq!(ckpt.lsn, 4);
        assert_eq!(ckpt.graph, graph);
        assert_eq!(ckpt.index_bytes, index_bytes);
        // Replay from the checkpoint: everything is covered.
        let (_, outcome) = Wal::open(&dir, 40, ckpt.lsn).unwrap();
        assert!(outcome.records.is_empty());
        // Full replay would be refused records <= start only; from 0 the
        // surviving segments may hold a suffix — all its LSNs > some
        // earlier record's, so replay from 0 sees a discontinuity and
        // stops, which is why recovery always goes through the newest
        // checkpoint.
    }

    #[test]
    fn corrupt_checkpoint_falls_back_to_older_image() {
        let dir = tmpdir("ckpt_fallback");
        let g1 = DiGraph::from_edges(3, &[(0, 1)]);
        let g2 = DiGraph::from_edges(3, &[(0, 1), (1, 2)]);
        {
            let (mut wal, _) = Wal::open(&dir, 1 << 20, 0).unwrap();
            wal.append(&[Insert(1, 2)]).unwrap();
            wal.write_checkpoint(0, &g1, &[]).unwrap();
            wal.write_checkpoint(1, &g2, &[9, 9]).unwrap();
        }
        // Corrupt the newest image: recovery must fall back to LSN 0.
        let newest = checkpoint_path(&dir, 1);
        let mut bytes = fs::read(&newest).unwrap();
        let at = bytes.len() - 1;
        bytes[at] ^= 0x01;
        fs::write(&newest, &bytes).unwrap();
        let ckpt = latest_checkpoint(&dir).unwrap().expect("fallback image");
        assert_eq!(ckpt.lsn, 0);
        assert_eq!(ckpt.graph, g1);
    }

    #[test]
    fn stale_tmp_files_are_swept_at_open() {
        let dir = tmpdir("tmp_sweep");
        {
            let (mut wal, _) = Wal::open(&dir, 1 << 20, 0).unwrap();
            wal.append(&[Insert(0, 1)]).unwrap();
        }
        // Debris a crash between create and rename would leave behind —
        // one with this process's pid, one from a hypothetical earlier
        // incarnation.
        let mine = dir.join(format!("ckpt-000000000000009.tmp.{}", std::process::id()));
        let theirs = dir.join("ckpt-000000000000004.tmp.12345");
        fs::write(&mine, b"half a checkpoint").unwrap();
        fs::write(&theirs, b"older half").unwrap();

        let (_, outcome) = Wal::open(&dir, 1 << 20, 0).unwrap();
        assert_eq!(outcome.swept_tmp_files, 2);
        assert_eq!(outcome.records.len(), 1, "real log untouched");
        assert!(!mine.exists() && !theirs.exists());
    }

    #[test]
    fn verify_segment_bytes_accepts_clean_and_pinpoints_rot() {
        let dir = tmpdir("scrub_verify");
        {
            let (mut wal, _) = Wal::open(&dir, 1 << 20, 0).unwrap();
            for batch in batches() {
                wal.append(&batch).unwrap();
            }
        }
        let seg = segment_path(&dir, 0);
        let clean = fs::read(&seg).unwrap();
        assert_eq!(
            verify_segment_bytes(&clean, clean.len()).unwrap(),
            clean.len() as u64
        );
        // A shorter prefix cut at a record boundary also verifies.
        let first_len = u32::from_le_bytes(
            clean[SEGMENT_HEADER..SEGMENT_HEADER + 4]
                .try_into()
                .unwrap(),
        ) as usize;
        let boundary = SEGMENT_HEADER + RECORD_HEADER + first_len;
        assert!(verify_segment_bytes(&clean, boundary).is_ok());
        // ... but a cut inside a record is rot for a sealed segment.
        assert!(verify_segment_bytes(&clean, boundary - 1).is_err());
        // Flip one body byte: the checksum walk must name the spot.
        let mut rotten = clean.clone();
        let at = rotten.len() - 1;
        rotten[at] ^= 0x40;
        let err = verify_segment_bytes(&rotten, rotten.len()).unwrap_err();
        assert!(err.contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn body_codec_rejects_malformed_input() {
        assert!(decode_body(&[]).is_err());
        assert!(decode_body(&[1, 0, 0]).is_err());
        // Count claims more updates than the bytes hold.
        let mut body = encode_body(&[Insert(1, 2)]);
        body[0] = 2;
        assert!(decode_body(&body).is_err());
        // Unknown op byte.
        let mut body = encode_body(&[Insert(1, 2)]);
        body[4] = 9;
        assert!(decode_body(&body).is_err());
        // Trailing bytes.
        let mut body = encode_body(&[Delete(3, 4)]);
        body.push(0);
        assert!(decode_body(&body).is_err());
    }

    /// An append whose fsync fails leaves the record fully on disk —
    /// the tail repair must still remove it, so replay sees exactly the
    /// acked records and the next append reuses the failed LSN.
    #[test]
    fn failed_fsync_append_is_truncated_away() {
        let dir = tmpdir("fsync_fault");
        let plan = FaultPlan {
            fsync_per_mille: 1000,
            ..FaultPlan::none(1)
        };
        let faulty = FaultyStorage::new_disarmed(Arc::new(FsStorage), plan);
        let storage: Arc<dyn Storage> = Arc::new(faulty.clone());
        let (mut wal, _) = Wal::open_with_storage(storage, &dir, 1 << 20, 0).unwrap();
        assert_eq!(wal.append(&[Insert(0, 1)]).unwrap(), 1);

        faulty.set_armed(true);
        let err = wal.append(&[Insert(5, 6)]).unwrap_err();
        assert!(err.to_string().contains("injected fsync fault"), "{err}");
        assert!(wal.broken_reason().is_none(), "repair must have succeeded");
        faulty.set_armed(false);

        // The errored record's LSN is reissued to the next batch.
        assert_eq!(wal.append(&[Insert(2, 3)]).unwrap(), 2);
        let (_, outcome) = Wal::open(&dir, 1 << 20, 0).unwrap();
        let all: Vec<_> = outcome.records.iter().flat_map(|r| &r.updates).collect();
        assert_eq!(all, vec![&Insert(0, 1), &Insert(2, 3)], "no errored record");
    }

    /// A short (torn) write persists a prefix of the record; repair cuts
    /// it back so the log is byte-identical to never having appended.
    #[test]
    fn short_write_append_is_truncated_away() {
        let dir = tmpdir("short_write_fault");
        let plan = FaultPlan {
            short_write_per_mille: 1000,
            ..FaultPlan::none(3)
        };
        let faulty = FaultyStorage::new_disarmed(Arc::new(FsStorage), plan);
        let storage: Arc<dyn Storage> = Arc::new(faulty.clone());
        let (mut wal, _) = Wal::open_with_storage(storage, &dir, 1 << 20, 0).unwrap();
        wal.append(&[Insert(0, 1)]).unwrap();
        let clean = fs::read(segment_path(&dir, 0)).unwrap();

        faulty.set_armed(true);
        assert!(wal.append(&[Insert(1, 2), Insert(3, 4)]).is_err());
        faulty.set_armed(false);
        assert_eq!(
            fs::read(segment_path(&dir, 0)).unwrap(),
            clean,
            "segment bytes unchanged after repair"
        );
        assert_eq!(wal.append(&[Insert(7, 7)]).unwrap(), 2);
    }

    /// When the tail repair itself fails, the log flips to broken and
    /// refuses appends; `try_repair` heals it once truncation works.
    #[test]
    fn unrepairable_append_breaks_the_log_until_repair() {
        let dir = tmpdir("broken_wal");
        let plan = FaultPlan {
            fsync_per_mille: 1000,
            truncate_per_mille: 1000,
            ..FaultPlan::none(5)
        };
        let faulty = FaultyStorage::new_disarmed(Arc::new(FsStorage), plan);
        let storage: Arc<dyn Storage> = Arc::new(faulty.clone());
        let (mut wal, _) = Wal::open_with_storage(storage, &dir, 1 << 20, 0).unwrap();
        wal.append(&[Insert(0, 1)]).unwrap();

        faulty.set_armed(true);
        assert!(wal.append(&[Insert(1, 2)]).is_err());
        assert!(wal.broken_reason().is_some(), "repair failed -> broken");
        let err = wal.append(&[Insert(2, 3)]).unwrap_err();
        assert!(err.to_string().contains("wal unavailable"), "{err}");

        faulty.set_armed(false);
        wal.try_repair().unwrap();
        assert!(wal.broken_reason().is_none());
        assert_eq!(wal.append(&[Insert(2, 3)]).unwrap(), 2);
        let (_, outcome) = Wal::open(&dir, 1 << 20, 0).unwrap();
        let all: Vec<_> = outcome.records.iter().flat_map(|r| &r.updates).collect();
        assert_eq!(all, vec![&Insert(0, 1), &Insert(2, 3)]);
    }
}
