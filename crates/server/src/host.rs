//! The engine host: recovery, the background applier thread, and the
//! durable update path.
//!
//! Threading model: the host owns a [`SnapshotHandle`] plus a WAL behind
//! a mutex; a single background *applier* thread owns the mutable
//! [`DynamicPrsim`]. `update()` appends the batch to the WAL (fsync —
//! the ack point) and enqueues it; the applier drains the queue,
//! coalescing every batch it finds before cloning the engine into one
//! new [`EpochSnapshot`] and atomically publishing it. Queries touch
//! only the snapshot handle, so they are never blocked by an in-flight
//! batch — the property the `serve` bench scenario measures.

use std::collections::VecDeque;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use prsim_core::{DynamicPrsim, DynamicTotals, PrsimConfig, PrsimIndex};
use prsim_graph::{DiGraph, EdgeUpdate};

use crate::snapshot::{EpochSnapshot, SnapshotHandle};
use crate::wal::{self, Wal, WalStats};
use crate::ServerError;

/// Host configuration.
#[derive(Clone, Debug)]
pub struct HostOptions {
    /// Engine configuration (must match across restarts for recovery to
    /// reproduce the pre-crash state).
    pub config: PrsimConfig,
    /// WAL segment rotation threshold in bytes.
    pub segment_bytes: u64,
}

impl HostOptions {
    /// Options with the default 4 MiB segment size.
    pub fn new(config: PrsimConfig) -> Self {
        HostOptions {
            config,
            segment_bytes: 4 << 20,
        }
    }
}

/// What recovery found when the host opened its WAL directory.
#[derive(Clone, Copy, Debug, Default)]
pub struct RecoveryReport {
    /// LSN of the checkpoint recovery started from, if any.
    pub checkpoint_lsn: Option<u64>,
    /// WAL records re-applied behind the checkpoint.
    pub replayed_records: usize,
    /// Individual edge updates inside those records.
    pub replayed_updates: usize,
    /// Bytes removed by torn-tail / corrupt-record repair.
    pub truncated_bytes: u64,
    /// Whole segments dropped after a mid-log corruption.
    pub dropped_segments: usize,
}

/// Result of a completed checkpoint request.
#[derive(Clone, Copy, Debug)]
pub struct CheckpointInfo {
    /// LSN the image covers.
    pub lsn: u64,
    /// Image size in bytes.
    pub bytes: u64,
}

/// Point-in-time server observability, rendered by `stats`.
#[derive(Clone, Copy, Debug)]
pub struct ServerStats {
    /// Currently published epoch.
    pub epoch: u64,
    /// Highest LSN the published snapshot reflects.
    pub applied_lsn: u64,
    /// Highest LSN fsynced to the WAL (≥ `applied_lsn`).
    pub durable_lsn: u64,
    /// Update batches waiting for the applier.
    pub queue_depth: usize,
    /// Nodes in the served graph.
    pub nodes: usize,
    /// Edges in the served graph.
    pub edges: usize,
    /// Hubs in the served index.
    pub hubs: usize,
    /// WAL file statistics.
    pub wal: WalStats,
    /// Checkpoints written by this process.
    pub checkpoints: u64,
    /// What recovery replayed at boot.
    pub recovery: RecoveryReport,
    /// Lifetime engine totals (repairs, rebuilds, compactions).
    pub totals: DynamicTotals,
}

impl ServerStats {
    /// Renders the stats as one `key=value` line (the `stats` protocol
    /// response payload).
    pub fn render(&self) -> String {
        format!(
            "epoch={} applied_lsn={} durable_lsn={} queue_depth={} nodes={} edges={} hubs={} \
             wal_bytes={} wal_segments={} wal_syncs={} checkpoints={} \
             replayed_records={} replayed_updates={} truncated_bytes={} \
             applied_updates={} noop_updates={} repaired_hubs={} rebuilds={}",
            self.epoch,
            self.applied_lsn,
            self.durable_lsn,
            self.queue_depth,
            self.nodes,
            self.edges,
            self.hubs,
            self.wal.bytes,
            self.wal.segments,
            self.wal.syncs,
            self.checkpoints,
            self.recovery.replayed_records,
            self.recovery.replayed_updates,
            self.recovery.truncated_bytes,
            self.totals.applied_updates,
            self.totals.noop_updates,
            self.totals.repaired_hubs,
            self.totals.rebuilds,
        )
    }
}

/// Work items for the applier thread.
enum Task {
    /// A durable batch to apply (already fsynced under `lsn`).
    Batch { lsn: u64, updates: Vec<EdgeUpdate> },
    /// Checkpoint the applied state and report back.
    Checkpoint {
        done: mpsc::Sender<Result<CheckpointInfo, String>>,
    },
}

/// Applier-published progress, waited on by `sync`/`checkpoint`.
struct Progress {
    epoch: u64,
    applied_lsn: u64,
    totals: DynamicTotals,
    checkpoints: u64,
}

struct Shared {
    snapshot: SnapshotHandle,
    wal: Mutex<Wal>,
    queue: Mutex<VecDeque<Task>>,
    queue_cond: Condvar,
    progress: Mutex<Progress>,
    progress_cond: Condvar,
    shutdown: AtomicBool,
    /// Set (with the error message) if the applier thread died.
    failure: Mutex<Option<String>>,
}

/// A resident PRSim engine over a durable WAL. See the crate docs for
/// the recovery guarantee.
pub struct EngineHost {
    shared: Arc<Shared>,
    applier: Mutex<Option<JoinHandle<()>>>,
    recovery: RecoveryReport,
}

impl std::fmt::Debug for EngineHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineHost")
            .field("recovery", &self.recovery)
            .finish_non_exhaustive()
    }
}

impl EngineHost {
    /// Opens the host: recover from the newest valid checkpoint in
    /// `wal_dir` (falling back to `base_graph`), replay the WAL suffix
    /// through the incremental repair path, publish epoch 1 and start
    /// the applier thread. `base_graph` is only the seed for a log
    /// directory without a checkpoint — a recovering host ignores it in
    /// favor of the checkpoint image.
    pub fn open(
        base_graph: &DiGraph,
        wal_dir: &Path,
        options: HostOptions,
    ) -> Result<EngineHost, ServerError> {
        let checkpoint = wal::latest_checkpoint(wal_dir)?;
        let (base, start_lsn, checkpoint_lsn) = match checkpoint {
            Some(ckpt) => {
                // The image must be self-consistent before we trust it.
                PrsimIndex::from_bytes(&ckpt.index_bytes, ckpt.graph.node_count())?;
                (ckpt.graph, ckpt.lsn, Some(ckpt.lsn))
            }
            None => (base_graph.clone(), 0, None),
        };
        let mut dynamic = DynamicPrsim::new_incremental(&base, options.config.clone())?;
        let (wal, outcome) = Wal::open(wal_dir, options.segment_bytes, start_lsn)?;
        let mut applied_lsn = start_lsn;
        let mut replayed_updates = 0usize;
        for record in &outcome.records {
            for &update in &record.updates {
                dynamic.apply(update)?;
                replayed_updates += 1;
            }
            applied_lsn = record.lsn;
        }
        let recovery = RecoveryReport {
            checkpoint_lsn,
            replayed_records: outcome.records.len(),
            replayed_updates,
            truncated_bytes: outcome.truncated_bytes,
            dropped_segments: outcome.dropped_segments,
        };

        let engine = dynamic
            .engine()
            .expect("incremental engine is always built")
            .clone();
        let totals = dynamic.totals();
        let shared = Arc::new(Shared {
            snapshot: SnapshotHandle::new(EpochSnapshot::new(1, applied_lsn, engine)),
            wal: Mutex::new(wal),
            queue: Mutex::new(VecDeque::new()),
            queue_cond: Condvar::new(),
            progress: Mutex::new(Progress {
                epoch: 1,
                applied_lsn,
                totals,
                checkpoints: 0,
            }),
            progress_cond: Condvar::new(),
            shutdown: AtomicBool::new(false),
            failure: Mutex::new(None),
        });
        let applier_shared = Arc::clone(&shared);
        let applier = std::thread::Builder::new()
            .name("prsim-applier".into())
            .spawn(move || applier_loop(applier_shared, dynamic, applied_lsn))
            .map_err(ServerError::Io)?;
        Ok(EngineHost {
            shared,
            applier: Mutex::new(Some(applier)),
            recovery,
        })
    }

    /// What recovery replayed when this host booted.
    pub fn recovery(&self) -> RecoveryReport {
        self.recovery
    }

    /// The currently published snapshot (lock-free queries run here).
    pub fn snapshot(&self) -> Arc<EpochSnapshot> {
        self.shared.snapshot.current()
    }

    /// Appends one batch to the WAL, fsyncs it (the durability ack), and
    /// queues it for the applier. Returns the batch's LSN.
    pub fn update(&self, updates: Vec<EdgeUpdate>) -> Result<u64, ServerError> {
        self.check_applier()?;
        // The WAL lock is held across the enqueue so the queue sees
        // batches in LSN order.
        let mut wal = self.shared.wal.lock().expect("wal lock poisoned");
        let lsn = wal.append(&updates)?;
        let mut queue = self.shared.queue.lock().expect("queue lock poisoned");
        queue.push_back(Task::Batch { lsn, updates });
        self.shared.queue_cond.notify_one();
        Ok(lsn)
    }

    /// Blocks until every batch durable at the time of the call has been
    /// applied and published; returns `(applied_lsn, epoch)`. This is
    /// the protocol's barrier for tests and scripted clients.
    pub fn sync(&self) -> Result<(u64, u64), ServerError> {
        let target = {
            let wal = self.shared.wal.lock().expect("wal lock poisoned");
            wal.stats().next_lsn.saturating_sub(1)
        };
        let mut progress = self.shared.progress.lock().expect("progress lock poisoned");
        while progress.applied_lsn < target {
            self.check_applier()?;
            let (next, timeout) = self
                .shared
                .progress_cond
                .wait_timeout(progress, std::time::Duration::from_millis(100))
                .expect("progress lock poisoned");
            progress = next;
            if timeout.timed_out() {
                // Loop re-checks applier health so a dead applier cannot
                // strand the caller.
                continue;
            }
        }
        Ok((progress.applied_lsn, progress.epoch))
    }

    /// Checkpoints the applied state: the applier writes the image (and
    /// garbage-collects covered segments) after finishing the batches
    /// queued ahead of this call.
    pub fn checkpoint(&self) -> Result<CheckpointInfo, ServerError> {
        self.check_applier()?;
        let (done, rx) = mpsc::channel();
        {
            let mut queue = self.shared.queue.lock().expect("queue lock poisoned");
            queue.push_back(Task::Checkpoint { done });
            self.shared.queue_cond.notify_one();
        }
        match rx.recv() {
            Ok(Ok(info)) => Ok(info),
            Ok(Err(msg)) => Err(ServerError::ApplierDead(msg)),
            Err(_) => {
                self.check_applier()?;
                Err(ServerError::ApplierDead("checkpoint reply lost".into()))
            }
        }
    }

    /// Current observability snapshot.
    pub fn stats(&self) -> ServerStats {
        let snap = self.shared.snapshot.current();
        let wal = self.shared.wal.lock().expect("wal lock poisoned").stats();
        let queue_depth = self.shared.queue.lock().expect("queue lock poisoned").len();
        let progress = self.shared.progress.lock().expect("progress lock poisoned");
        ServerStats {
            epoch: progress.epoch,
            applied_lsn: progress.applied_lsn,
            durable_lsn: wal.next_lsn.saturating_sub(1),
            queue_depth,
            nodes: snap.engine().graph().node_count(),
            edges: snap.engine().graph().edge_count(),
            hubs: snap.engine().index().hub_count(),
            wal,
            checkpoints: progress.checkpoints,
            recovery: self.recovery,
            totals: progress.totals,
        }
    }

    /// Stops the applier (after it drains the queue) and joins it.
    /// Idempotent; also run by `Drop`.
    pub fn shutdown(&self) -> Result<(), ServerError> {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.queue_cond.notify_all();
        let handle = self.applier.lock().expect("applier lock poisoned").take();
        if let Some(handle) = handle {
            handle
                .join()
                .map_err(|_| ServerError::ApplierDead("applier panicked".into()))?;
        }
        self.check_applier()
    }

    fn check_applier(&self) -> Result<(), ServerError> {
        let failure = self.shared.failure.lock().expect("failure lock poisoned");
        match failure.as_ref() {
            Some(msg) => Err(ServerError::ApplierDead(msg.clone())),
            None => Ok(()),
        }
    }
}

impl Drop for EngineHost {
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}

/// The applier thread: drain → apply → publish, until shutdown.
fn applier_loop(shared: Arc<Shared>, mut dynamic: DynamicPrsim, mut applied_lsn: u64) {
    loop {
        let mut tasks = {
            let mut queue = shared.queue.lock().expect("queue lock poisoned");
            while queue.is_empty() && !shared.shutdown.load(Ordering::Acquire) {
                queue = shared.queue_cond.wait(queue).expect("queue lock poisoned");
            }
            if queue.is_empty() {
                return; // clean shutdown: queue fully drained
            }
            std::mem::take(&mut *queue)
        };
        // Coalesce: apply every drained batch, publish one epoch at the
        // end (checkpoints force an intermediate publish so the image
        // LSN always matches a published snapshot).
        let mut dirty = false;
        for task in tasks.drain(..) {
            match task {
                Task::Batch { lsn, updates } => {
                    for update in updates {
                        if let Err(err) = dynamic.apply(update) {
                            fail(&shared, format!("apply(lsn {lsn}): {err}"));
                            return;
                        }
                    }
                    applied_lsn = lsn;
                    dirty = true;
                }
                Task::Checkpoint { done } => {
                    if dirty {
                        publish(&shared, &dynamic, applied_lsn);
                        dirty = false;
                    }
                    let result = write_checkpoint(&shared, &dynamic, applied_lsn);
                    if result.is_ok() {
                        let mut progress = shared.progress.lock().expect("progress lock poisoned");
                        progress.checkpoints += 1;
                    }
                    let _ = done.send(result);
                }
            }
        }
        if dirty {
            publish(&shared, &dynamic, applied_lsn);
        }
    }
}

/// Clones the repaired engine into a fresh epoch and swaps it in.
fn publish(shared: &Shared, dynamic: &DynamicPrsim, applied_lsn: u64) {
    let engine = dynamic
        .engine()
        .expect("incremental engine is always built")
        .clone();
    let mut progress = shared.progress.lock().expect("progress lock poisoned");
    let epoch = progress.epoch + 1;
    shared
        .snapshot
        .publish(Arc::new(EpochSnapshot::new(epoch, applied_lsn, engine)));
    progress.epoch = epoch;
    progress.applied_lsn = applied_lsn;
    progress.totals = dynamic.totals();
    shared.progress_cond.notify_all();
}

fn write_checkpoint(
    shared: &Shared,
    dynamic: &DynamicPrsim,
    applied_lsn: u64,
) -> Result<CheckpointInfo, String> {
    let engine = dynamic
        .engine()
        .expect("incremental engine is always built");
    let index_bytes = engine.index().to_bytes();
    let mut wal = shared.wal.lock().expect("wal lock poisoned");
    wal.write_checkpoint(applied_lsn, engine.graph(), &index_bytes)
        .map(|bytes| CheckpointInfo {
            lsn: applied_lsn,
            bytes,
        })
        .map_err(|e| format!("checkpoint at lsn {applied_lsn}: {e}"))
}

/// Records the applier's terminal error and wakes every waiter.
fn fail(shared: &Shared, msg: String) {
    eprintln!("prsim-applier: fatal: {msg}");
    *shared.failure.lock().expect("failure lock poisoned") = Some(msg);
    shared.shutdown.store(true, Ordering::Release);
    shared.progress_cond.notify_all();
}
