//! The engine host: recovery, the background applier thread, and the
//! durable update path.
//!
//! Threading model: the host owns a [`SnapshotHandle`] plus a WAL behind
//! a mutex; a single background *applier* thread owns the mutable
//! [`DynamicPrsim`]. `update()` reserves queue space (the backpressure
//! bound), appends the batch to the WAL (fsync — the ack point) and
//! enqueues it; the applier drains the queue, coalescing every batch it
//! finds before cloning the engine into one new [`EpochSnapshot`] and
//! atomically publishing it. Queries touch only the snapshot handle, so
//! they are never blocked by an in-flight batch — the property the
//! `serve` bench scenario measures.
//!
//! ## Overload and failure behavior
//!
//! The applier queue is bounded by batch count *and* bytes, where the
//! accounted "inflight" work covers both queued batches and the batch
//! the applier is currently applying (otherwise the applier's
//! drain-everything strategy would make any count bound meaningless).
//! An `update` past the bound blocks up to
//! [`HostOptions::busy_timeout`], then fails with the retryable
//! [`ServerError::Busy`]. The applier body runs under `catch_unwind`:
//! a panic (or an unappliable record) marks the host *degraded* — reads
//! keep serving the last published epoch, writes fail fast, and
//! [`EngineHost::health`] reports the reason. A WAL whose failed append
//! could not be repaired is retried with exponential backoff on
//! subsequent `update` calls rather than poisoning the process.
//!
//! Every internal lock acquisition recovers from poisoning
//! (`lock_recover`): the shared structures are updated atomically
//! under their locks, so a panicking peer cannot leave them mid-update,
//! and degraded-mode reporting — not process death — is the designed
//! response to a dead thread.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use prsim_core::{DynamicPrsim, DynamicTotals, PagedOptions, PagingStats, PrsimConfig, PrsimIndex};
use prsim_graph::{DiGraph, EdgeUpdate};

use crate::snapshot::{EpochSnapshot, SnapshotHandle};
use crate::storage::{FsStorage, Storage};
use crate::wal::{self, Wal, WalStats};
use crate::ServerError;

/// Locks a mutex, recovering the guard if a panicking thread poisoned
/// it. Safe here by construction: every critical section in this crate
/// leaves the protected value consistent at each await-free step (plain
/// field writes, queue pushes), and the panic that poisoned the lock is
/// separately surfaced through degraded-mode health reporting.
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// [`Condvar::wait`] with the same poison recovery as [`lock_recover`].
fn wait_recover<'a, T>(cond: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cond.wait(guard).unwrap_or_else(|e| e.into_inner())
}

/// [`Condvar::wait_timeout`] with the same poison recovery.
pub(crate) fn wait_timeout_recover<'a, T>(
    cond: &Condvar,
    guard: MutexGuard<'a, T>,
    timeout: Duration,
) -> (MutexGuard<'a, T>, bool) {
    match cond.wait_timeout(guard, timeout) {
        Ok((g, t)) => (g, t.timed_out()),
        Err(e) => {
            let (g, t) = e.into_inner();
            (g, t.timed_out())
        }
    }
}

/// Host configuration.
#[derive(Clone, Debug)]
pub struct HostOptions {
    /// Engine configuration (must match across restarts for recovery to
    /// reproduce the pre-crash state).
    pub config: PrsimConfig,
    /// WAL segment rotation threshold in bytes.
    pub segment_bytes: u64,
    /// Maximum inflight update batches (queued + being applied) before
    /// `update` blocks. A single batch is always admitted when the
    /// queue is empty, so no batch can be too large to ever accept.
    pub queue_depth: usize,
    /// Maximum inflight update bytes (WAL record encoding size) before
    /// `update` blocks; the same empty-queue exception applies.
    pub queue_bytes: usize,
    /// How long `update` blocks for queue space before failing with the
    /// retryable [`ServerError::Busy`].
    pub busy_timeout: Duration,
    /// First retry delay after the WAL breaks (doubles per failed
    /// repair attempt, capped at [`HostOptions::wal_retry_cap`]).
    pub wal_retry_base: Duration,
    /// Ceiling for the WAL repair backoff delay.
    pub wal_retry_cap: Duration,
    /// Chaos/testing hook: sleep this long before applying each batch,
    /// so tests can hold the queue full deterministically. Zero in
    /// production.
    pub applier_delay: Duration,
    /// Chaos/testing hook: panic inside the applier when it reaches
    /// this LSN, to exercise the supervision path end-to-end. `None` in
    /// production.
    pub applier_panic_at_lsn: Option<u64>,
    /// Hard memory budget in bytes for the postings arena. `None`
    /// (default) serves fully resident. `Some(budget)` demotes the
    /// recovered index to a paged arena file (`arena-<lsn>.pages` in
    /// the WAL directory) behind a pin/unpin buffer pool whose resident
    /// bytes never exceed the budget; a budget too small for the page
    /// index, the pinned hot set and one working frame fails `open`
    /// with [`prsim_core::PrsimError::InvalidConfig`].
    pub memory_budget: Option<u64>,
    /// Page size of the paged arena file (ignored without
    /// [`HostOptions::memory_budget`]).
    pub page_bytes: u32,
    /// Hub ranks (highest reverse PageRank first) whose postings pages
    /// are pinned resident — the hot set exempt from eviction.
    pub page_hot_ranks: usize,
    /// Pause between background integrity-scrub cycles ([`crate::scrub`]).
    /// `Some(interval)` starts the scrubber thread, which re-verifies
    /// checksums across cold WAL segments, checkpoint images and paged
    /// arena pages, healing what it can and degrading on what it
    /// cannot. `None` (default) disables scrubbing.
    pub scrub_interval: Option<Duration>,
}

impl HostOptions {
    /// Options with the default 4 MiB segments, a 256-batch / 16 MiB
    /// queue bound, a 250 ms busy budget and a 100 ms..10 s WAL retry
    /// backoff.
    pub fn new(config: PrsimConfig) -> Self {
        HostOptions {
            config,
            segment_bytes: 4 << 20,
            queue_depth: 256,
            queue_bytes: 16 << 20,
            busy_timeout: Duration::from_millis(250),
            wal_retry_base: Duration::from_millis(100),
            wal_retry_cap: Duration::from_secs(10),
            applier_delay: Duration::ZERO,
            applier_panic_at_lsn: None,
            memory_budget: None,
            page_bytes: PagedOptions::default().page_bytes,
            page_hot_ranks: PagedOptions::default().hot_ranks,
            scrub_interval: None,
        }
    }

    /// The paged-arena knobs as core's [`PagedOptions`], or `None` when
    /// the host serves fully resident.
    fn paged_options(&self) -> Option<PagedOptions> {
        self.memory_budget.map(|budget| PagedOptions {
            page_bytes: self.page_bytes,
            memory_budget: budget,
            hot_ranks: self.page_hot_ranks,
        })
    }
}

/// Path of the paged arena generation demoted at `lsn`.
fn arena_path(wal_dir: &Path, lsn: u64) -> PathBuf {
    wal_dir.join(format!("arena-{lsn:020}.pages"))
}

/// What recovery found when the host opened its WAL directory.
#[derive(Clone, Copy, Debug, Default)]
pub struct RecoveryReport {
    /// LSN of the checkpoint recovery started from, if any.
    pub checkpoint_lsn: Option<u64>,
    /// WAL records re-applied behind the checkpoint.
    pub replayed_records: usize,
    /// Individual edge updates inside those records.
    pub replayed_updates: usize,
    /// Bytes removed by torn-tail / corrupt-record repair.
    pub truncated_bytes: u64,
    /// Whole segments dropped after a mid-log corruption.
    pub dropped_segments: usize,
}

/// Result of a completed checkpoint request.
#[derive(Clone, Copy, Debug)]
pub struct CheckpointInfo {
    /// LSN the image covers.
    pub lsn: u64,
    /// Image size in bytes.
    pub bytes: u64,
}

/// Serving health, reported by `stats` and the `health` protocol verb.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Health {
    /// Fully operational.
    Ok,
    /// Read-only (applier dead) or write-degraded (WAL broken, healing
    /// with backoff); reads keep serving the last published epoch.
    Degraded {
        /// Human-readable cause.
        reason: String,
    },
}

impl Health {
    /// Whether the host is degraded.
    pub fn is_degraded(&self) -> bool {
        matches!(self, Health::Degraded { .. })
    }

    /// Protocol rendering: `ok` or `degraded reason=<cause>`.
    pub fn render(&self) -> String {
        match self {
            Health::Ok => "ok".into(),
            Health::Degraded { reason } => format!("degraded reason={reason}"),
        }
    }
}

/// Point-in-time server observability, rendered by `stats`.
#[derive(Clone, Debug)]
pub struct ServerStats {
    /// Currently published epoch.
    pub epoch: u64,
    /// Highest LSN the published snapshot reflects.
    pub applied_lsn: u64,
    /// Highest LSN fsynced to the WAL (≥ `applied_lsn`).
    pub durable_lsn: u64,
    /// Update batches waiting for the applier.
    pub queue_depth: usize,
    /// Inflight update bytes (queued + being applied).
    pub queue_bytes: usize,
    /// Updates rejected with `BUSY` after the busy budget expired.
    pub busy_rejects: u64,
    /// High-water mark of inflight batches.
    pub max_queue_depth: usize,
    /// High-water mark of inflight bytes.
    pub max_queue_bytes: usize,
    /// Current serving health.
    pub health: Health,
    /// Nodes in the served graph.
    pub nodes: usize,
    /// Edges in the served graph.
    pub edges: usize,
    /// Hubs in the served index.
    pub hubs: usize,
    /// WAL file statistics.
    pub wal: WalStats,
    /// Checkpoints written by this process.
    pub checkpoints: u64,
    /// What recovery replayed at boot.
    pub recovery: RecoveryReport,
    /// Lifetime engine totals (repairs, rebuilds, compactions).
    pub totals: DynamicTotals,
    /// Buffer-pool counters of the served snapshot's paged arena;
    /// `None` when serving fully resident.
    pub paging: Option<PagingStats>,
    /// Completed integrity-scrub cycles.
    pub scrub_cycles: u64,
    /// Bytes re-verified at rest by the scrubber.
    pub scrub_bytes_verified: u64,
    /// At-rest integrity errors the scrubber found.
    pub scrub_errors_found: u64,
    /// Found errors healed in place (page rewrite, checkpoint refresh,
    /// redundant-artifact removal).
    pub scrub_errors_healed: u64,
}

impl ServerStats {
    /// Renders the stats as one `key=value` line (the `stats` protocol
    /// response payload). Paging counters are appended only when the
    /// host serves a paged arena, so resident deployments keep their
    /// historical line format.
    pub fn render(&self) -> String {
        let mut line = self.render_resident();
        if let Some(p) = &self.paging {
            line.push_str(&format!(
                " paged_resident_bytes={} paged_peak_resident_bytes={} paged_budget_frames={} \
                 page_hits={} page_misses={} page_evictions={} page_faults={} page_unhealed={}",
                p.resident_bytes,
                p.peak_resident_bytes,
                p.frame_budget,
                p.hits,
                p.misses,
                p.evictions,
                p.faults,
                p.unhealed_pages,
            ));
        }
        line.push_str(&format!(
            " scrub_cycles={} scrub_bytes_verified={} scrub_errors_found={} scrub_errors_healed={}",
            self.scrub_cycles,
            self.scrub_bytes_verified,
            self.scrub_errors_found,
            self.scrub_errors_healed,
        ));
        line
    }

    fn render_resident(&self) -> String {
        format!(
            "epoch={} applied_lsn={} durable_lsn={} queue_depth={} nodes={} edges={} hubs={} \
             wal_bytes={} wal_segments={} wal_syncs={} checkpoints={} \
             replayed_records={} replayed_updates={} truncated_bytes={} \
             applied_updates={} noop_updates={} repaired_hubs={} rebuilds={} \
             health={} queue_bytes={} busy_rejects={} max_queue_depth={} max_queue_bytes={} \
             wal_failed_appends={}",
            self.epoch,
            self.applied_lsn,
            self.durable_lsn,
            self.queue_depth,
            self.nodes,
            self.edges,
            self.hubs,
            self.wal.bytes,
            self.wal.segments,
            self.wal.syncs,
            self.checkpoints,
            self.recovery.replayed_records,
            self.recovery.replayed_updates,
            self.recovery.truncated_bytes,
            self.totals.applied_updates,
            self.totals.noop_updates,
            self.totals.repaired_hubs,
            self.totals.rebuilds,
            if self.health.is_degraded() {
                "degraded"
            } else {
                "ok"
            },
            self.queue_bytes,
            self.busy_rejects,
            self.max_queue_depth,
            self.max_queue_bytes,
            self.wal.failed_appends,
        )
    }
}

/// Work items for the applier thread.
pub(crate) enum Task {
    /// A durable batch to apply (already fsynced under `lsn`).
    Batch {
        /// The batch's WAL LSN.
        lsn: u64,
        /// The batch, applied in order under that LSN.
        updates: Vec<EdgeUpdate>,
        /// WAL-encoded size, released from the inflight budget after
        /// the batch is applied.
        bytes: usize,
    },
    /// Checkpoint the applied state and report back.
    Checkpoint {
        /// Where the applier reports the result.
        done: mpsc::Sender<Result<CheckpointInfo, String>>,
    },
}

/// The bounded applier queue plus its admission-control accounting.
pub(crate) struct QueueState {
    pub(crate) tasks: VecDeque<Task>,
    /// Batches reserved but not yet applied (includes the batch the
    /// applier drained and is currently applying).
    inflight_batches: usize,
    /// WAL-encoded bytes of those batches.
    inflight_bytes: usize,
    busy_rejects: u64,
    max_inflight_batches: usize,
    max_inflight_bytes: usize,
}

/// Degraded-mode bookkeeping: why, and when to retry the WAL.
pub(crate) struct HealthState {
    /// The applier's terminal error, if it died.
    applier_dead: Option<String>,
    /// The WAL's unrepaired-failure reason, if it is broken.
    wal_broken: Option<String>,
    /// Failed repair attempts since the WAL broke (drives the backoff
    /// exponent).
    wal_repair_failures: u32,
    /// Earliest instant the next repair attempt may run.
    wal_retry_at: Option<Instant>,
    /// Why the paged arena could not be re-demoted after a drift
    /// rebuild, if that happened (the host keeps serving the resident
    /// rebuild — over budget, reported honestly — until a later
    /// rebuild's re-demote succeeds).
    paging_broken: Option<String>,
    /// The first unhealable integrity error the scrubber's latest cycle
    /// found, if any (cleared by a later clean cycle — a degraded state
    /// the disk grew out of, e.g. a re-checkpoint finally covering a
    /// rotten segment, exits on its own).
    pub(crate) scrub_broken: Option<String>,
}

/// Lifetime counters of the integrity scrubber, folded into
/// [`ServerStats`].
#[derive(Debug, Default)]
pub(crate) struct ScrubCounters {
    pub(crate) cycles: AtomicU64,
    pub(crate) bytes_verified: AtomicU64,
    pub(crate) errors_found: AtomicU64,
    pub(crate) errors_healed: AtomicU64,
}

pub(crate) struct Shared {
    pub(crate) opts: HostOptions,
    /// Storage backend, kept for demoting rebuilt indexes back out of
    /// core (and for the scrubber's at-rest reads and heal rewrites).
    pub(crate) storage: Arc<dyn Storage>,
    /// WAL directory (paged arena generations live next to the log).
    pub(crate) wal_dir: PathBuf,
    pub(crate) snapshot: SnapshotHandle,
    pub(crate) wal: Mutex<Wal>,
    pub(crate) queue: Mutex<QueueState>,
    /// Wakes the applier when work arrives.
    pub(crate) queue_cond: Condvar,
    /// Wakes blocked updaters when inflight space frees up.
    space_cond: Condvar,
    progress: Mutex<Progress>,
    progress_cond: Condvar,
    pub(crate) shutdown: AtomicBool,
    pub(crate) health: Mutex<HealthState>,
    pub(crate) scrub: ScrubCounters,
}

/// Applier-published progress, waited on by `sync`/`checkpoint`.
struct Progress {
    epoch: u64,
    applied_lsn: u64,
    totals: DynamicTotals,
    checkpoints: u64,
}

/// A resident PRSim engine over a durable WAL. See the crate docs for
/// the recovery guarantee and the failure model.
pub struct EngineHost {
    shared: Arc<Shared>,
    applier: Mutex<Option<JoinHandle<()>>>,
    scrubber: Mutex<Option<JoinHandle<()>>>,
    recovery: RecoveryReport,
}

impl std::fmt::Debug for EngineHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineHost")
            .field("recovery", &self.recovery)
            .finish_non_exhaustive()
    }
}

impl EngineHost {
    /// Opens the host on the real filesystem. See
    /// [`EngineHost::open_with_storage`].
    pub fn open(
        base_graph: &DiGraph,
        wal_dir: &Path,
        options: HostOptions,
    ) -> Result<EngineHost, ServerError> {
        EngineHost::open_with_storage(base_graph, wal_dir, options, Arc::new(FsStorage))
    }

    /// Opens the host on the given storage backend: recover from the
    /// newest valid checkpoint in `wal_dir` (falling back to
    /// `base_graph`), replay the WAL suffix through the incremental
    /// repair path, publish epoch 1 and start the applier thread.
    /// `base_graph` is only the seed for a log directory without a
    /// checkpoint — a recovering host ignores it in favor of the
    /// checkpoint image.
    pub fn open_with_storage(
        base_graph: &DiGraph,
        wal_dir: &Path,
        options: HostOptions,
        storage: Arc<dyn Storage>,
    ) -> Result<EngineHost, ServerError> {
        let checkpoint = wal::latest_checkpoint_with_storage(storage.as_ref(), wal_dir)?;
        let (base, start_lsn, checkpoint_lsn) = match checkpoint {
            Some(ckpt) => {
                // The image must be self-consistent before we trust it.
                PrsimIndex::from_bytes(&ckpt.index_bytes, ckpt.graph.node_count())?;
                (ckpt.graph, ckpt.lsn, Some(ckpt.lsn))
            }
            None => (base_graph.clone(), 0, None),
        };
        let mut dynamic = DynamicPrsim::new_incremental(&base, options.config.clone())?;
        let (wal, outcome) = Wal::open_with_storage(
            Arc::clone(&storage),
            wal_dir,
            options.segment_bytes,
            start_lsn,
        )?;
        let mut applied_lsn = start_lsn;
        let mut replayed_updates = 0usize;
        for record in &outcome.records {
            for &update in &record.updates {
                dynamic.apply(update)?;
                replayed_updates += 1;
            }
            applied_lsn = record.lsn;
        }
        let recovery = RecoveryReport {
            checkpoint_lsn,
            replayed_records: outcome.records.len(),
            replayed_updates,
            truncated_bytes: outcome.truncated_bytes,
            dropped_segments: outcome.dropped_segments,
        };

        if let Some(paged) = options.paged_options() {
            // Arena generations from previous incarnations are dead
            // weight now that recovery rebuilt the index from the
            // checkpoint + log; drop them before writing this boot's.
            remove_stale_arenas(storage.as_ref(), wal_dir);
            dynamic.page_out_index(
                Arc::clone(&storage),
                &arena_path(wal_dir, applied_lsn),
                &paged,
            )?;
        }

        let engine = dynamic
            .engine()
            .expect("incremental engine is always built")
            .clone();
        let totals = dynamic.totals();
        let shared = Arc::new(Shared {
            opts: options,
            storage,
            wal_dir: wal_dir.to_path_buf(),
            snapshot: SnapshotHandle::new(EpochSnapshot::new(1, applied_lsn, engine)),
            wal: Mutex::new(wal),
            queue: Mutex::new(QueueState {
                tasks: VecDeque::new(),
                inflight_batches: 0,
                inflight_bytes: 0,
                busy_rejects: 0,
                max_inflight_batches: 0,
                max_inflight_bytes: 0,
            }),
            queue_cond: Condvar::new(),
            space_cond: Condvar::new(),
            progress: Mutex::new(Progress {
                epoch: 1,
                applied_lsn,
                totals,
                checkpoints: 0,
            }),
            progress_cond: Condvar::new(),
            shutdown: AtomicBool::new(false),
            health: Mutex::new(HealthState {
                applier_dead: None,
                wal_broken: None,
                wal_repair_failures: 0,
                wal_retry_at: None,
                paging_broken: None,
                scrub_broken: None,
            }),
            scrub: ScrubCounters::default(),
        });
        let applier_shared = Arc::clone(&shared);
        let applier = std::thread::Builder::new()
            .name("prsim-applier".into())
            .spawn(move || applier_loop(applier_shared, dynamic, applied_lsn))
            .map_err(ServerError::Io)?;
        let scrubber = match shared.opts.scrub_interval {
            Some(interval) => {
                let scrub_shared = Arc::clone(&shared);
                Some(
                    std::thread::Builder::new()
                        .name("prsim-scrub".into())
                        .spawn(move || crate::scrub::scrub_loop(scrub_shared, interval))
                        .map_err(ServerError::Io)?,
                )
            }
            None => None,
        };
        Ok(EngineHost {
            shared,
            applier: Mutex::new(Some(applier)),
            scrubber: Mutex::new(scrubber),
            recovery,
        })
    }

    /// What recovery replayed when this host booted.
    pub fn recovery(&self) -> RecoveryReport {
        self.recovery
    }

    /// The currently published snapshot (lock-free queries run here).
    pub fn snapshot(&self) -> Arc<EpochSnapshot> {
        self.shared.snapshot.current()
    }

    /// Current serving health. Besides the applier and WAL states this
    /// folds in the paged arena's: a failed re-demote after a drift
    /// rebuild, or a buffer pool whose retries stopped healing page
    /// faults (bit-rot or a dying disk under the arena file), both
    /// degrade the host while reads keep serving — exact where pages
    /// still load, `degraded` per query where they do not.
    pub fn health(&self) -> Health {
        {
            let h = lock_recover(&self.shared.health);
            if let Some(msg) = &h.applier_dead {
                return Health::Degraded {
                    reason: format!("applier dead: {msg}"),
                };
            }
            if let Some(msg) = &h.wal_broken {
                return Health::Degraded {
                    reason: format!("wal broken: {msg}"),
                };
            }
            if let Some(msg) = &h.paging_broken {
                return Health::Degraded {
                    reason: format!("paging broken: {msg}"),
                };
            }
            if let Some(msg) = &h.scrub_broken {
                return Health::Degraded {
                    reason: format!("scrub: {msg}"),
                };
            }
        }
        if self
            .shared
            .snapshot
            .current()
            .engine()
            .index()
            .paging_unhealthy()
        {
            return Health::Degraded {
                reason: "paging unhealthy: repeated unhealed page faults".into(),
            };
        }
        Health::Ok
    }

    /// Appends one batch to the WAL, fsyncs it (the durability ack), and
    /// queues it for the applier. Returns the batch's LSN.
    ///
    /// Backpressure: when the inflight queue is at its count or byte
    /// bound, blocks up to [`HostOptions::busy_timeout`] for space, then
    /// fails with the retryable [`ServerError::Busy`]. On any error the
    /// batch is **not** durable and was not applied.
    pub fn update(&self, updates: Vec<EdgeUpdate>) -> Result<u64, ServerError> {
        self.check_applier()?;
        let bytes = wal::encoded_len(&updates);
        self.admit(bytes)?;
        let result = self.append_and_enqueue(updates, bytes);
        if result.is_err() {
            // The reservation from `admit` will never reach the applier;
            // hand the space back to any blocked updater.
            let mut q = lock_recover(&self.shared.queue);
            q.inflight_batches -= 1;
            q.inflight_bytes -= bytes;
            self.shared.space_cond.notify_one();
        }
        result
    }

    /// Blocks until the inflight queue has room for `bytes`, reserving
    /// the space on success.
    fn admit(&self, bytes: usize) -> Result<(), ServerError> {
        let opts = &self.shared.opts;
        let start = Instant::now();
        let deadline = start + opts.busy_timeout;
        let mut q = lock_recover(&self.shared.queue);
        loop {
            self.check_applier()?;
            // An empty queue always admits (a batch larger than the byte
            // budget must still be serviceable), otherwise both bounds
            // must hold.
            let fits = q.inflight_batches == 0
                || (q.inflight_batches < opts.queue_depth
                    && q.inflight_bytes + bytes <= opts.queue_bytes);
            if fits {
                q.inflight_batches += 1;
                q.inflight_bytes += bytes;
                q.max_inflight_batches = q.max_inflight_batches.max(q.inflight_batches);
                q.max_inflight_bytes = q.max_inflight_bytes.max(q.inflight_bytes);
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                q.busy_rejects += 1;
                return Err(ServerError::Busy {
                    waited_ms: start.elapsed().as_millis() as u64,
                });
            }
            let (next, _) = wait_timeout_recover(&self.shared.space_cond, q, deadline - now);
            q = next;
        }
    }

    /// The durability half of `update`: append under the WAL lock and
    /// enqueue in LSN order. WAL failures are mapped to the retryable
    /// [`ServerError::WalWrite`] and, when the log breaks, tracked for
    /// backoff-gated repair.
    fn append_and_enqueue(
        &self,
        updates: Vec<EdgeUpdate>,
        bytes: usize,
    ) -> Result<u64, ServerError> {
        // The WAL lock is held across the enqueue so the queue sees
        // batches in LSN order.
        let mut wal = lock_recover(&self.shared.wal);
        if wal.broken_reason().is_some() {
            self.retry_broken_wal(&mut wal)?;
        }
        match wal.append(&updates) {
            Ok(lsn) => {
                let mut q = lock_recover(&self.shared.queue);
                q.tasks.push_back(Task::Batch {
                    lsn,
                    updates,
                    bytes,
                });
                self.shared.queue_cond.notify_one();
                Ok(lsn)
            }
            Err(err) => {
                let mut h = lock_recover(&self.shared.health);
                if let Some(reason) = wal.broken_reason() {
                    // The tail repair failed too: enter degraded mode and
                    // schedule the first backoff-gated repair attempt.
                    if h.wal_broken.is_none() {
                        h.wal_broken = Some(reason.to_string());
                        h.wal_repair_failures = 0;
                        h.wal_retry_at = Some(Instant::now() + self.shared.opts.wal_retry_base);
                    }
                }
                Err(ServerError::WalWrite(err.to_string()))
            }
        }
    }

    /// Backoff-gated repair of a broken WAL: fails fast inside the
    /// backoff window, otherwise retries the tail repair, doubling the
    /// window on failure and clearing degraded state on success.
    fn retry_broken_wal(&self, wal: &mut Wal) -> Result<(), ServerError> {
        let reason = wal.broken_reason().unwrap_or("unknown").to_string();
        let mut h = lock_recover(&self.shared.health);
        if let Some(at) = h.wal_retry_at {
            if Instant::now() < at {
                return Err(ServerError::WalWrite(format!(
                    "wal degraded ({reason}); repair backoff in effect"
                )));
            }
        }
        match wal.try_repair() {
            Ok(()) => {
                h.wal_broken = None;
                h.wal_repair_failures = 0;
                h.wal_retry_at = None;
                Ok(())
            }
            Err(err) => {
                h.wal_repair_failures = h.wal_repair_failures.saturating_add(1);
                let exp = h.wal_repair_failures.min(10);
                let delay = self
                    .shared
                    .opts
                    .wal_retry_base
                    .saturating_mul(1u32 << exp)
                    .min(self.shared.opts.wal_retry_cap);
                h.wal_retry_at = Some(Instant::now() + delay);
                h.wal_broken = Some(reason);
                Err(ServerError::WalWrite(format!("wal repair failed: {err}")))
            }
        }
    }

    /// Blocks until every batch durable at the time of the call has been
    /// applied and published; returns `(applied_lsn, epoch)`. This is
    /// the protocol's barrier for tests and scripted clients.
    pub fn sync(&self) -> Result<(u64, u64), ServerError> {
        let target = {
            let wal = lock_recover(&self.shared.wal);
            wal.stats().next_lsn.saturating_sub(1)
        };
        let mut progress = lock_recover(&self.shared.progress);
        while progress.applied_lsn < target {
            self.check_applier()?;
            let (next, _) = wait_timeout_recover(
                &self.shared.progress_cond,
                progress,
                Duration::from_millis(100),
            );
            // Loop re-checks applier health so a dead applier cannot
            // strand the caller.
            progress = next;
        }
        Ok((progress.applied_lsn, progress.epoch))
    }

    /// Checkpoints the applied state: the applier writes the image (and
    /// garbage-collects covered segments) after finishing the batches
    /// queued ahead of this call.
    pub fn checkpoint(&self) -> Result<CheckpointInfo, ServerError> {
        self.check_applier()?;
        let (done, rx) = mpsc::channel();
        {
            let mut queue = lock_recover(&self.shared.queue);
            queue.tasks.push_back(Task::Checkpoint { done });
            self.shared.queue_cond.notify_one();
        }
        match rx.recv() {
            Ok(Ok(info)) => Ok(info),
            Ok(Err(msg)) => Err(ServerError::ApplierDead(msg)),
            Err(_) => {
                self.check_applier()?;
                Err(ServerError::ApplierDead("checkpoint reply lost".into()))
            }
        }
    }

    /// Current observability snapshot.
    pub fn stats(&self) -> ServerStats {
        let snap = self.shared.snapshot.current();
        let wal = lock_recover(&self.shared.wal).stats();
        let (queue_depth, queue_bytes, busy_rejects, max_queue_depth, max_queue_bytes) = {
            let q = lock_recover(&self.shared.queue);
            (
                q.tasks.len(),
                q.inflight_bytes,
                q.busy_rejects,
                q.max_inflight_batches,
                q.max_inflight_bytes,
            )
        };
        let health = self.health();
        let progress = lock_recover(&self.shared.progress);
        ServerStats {
            epoch: progress.epoch,
            applied_lsn: progress.applied_lsn,
            durable_lsn: wal.next_lsn.saturating_sub(1),
            queue_depth,
            queue_bytes,
            busy_rejects,
            max_queue_depth,
            max_queue_bytes,
            health,
            nodes: snap.engine().graph().node_count(),
            edges: snap.engine().graph().edge_count(),
            hubs: snap.engine().index().hub_count(),
            wal,
            checkpoints: progress.checkpoints,
            recovery: self.recovery,
            totals: progress.totals,
            paging: snap.engine().index().paging_stats(),
            scrub_cycles: self.shared.scrub.cycles.load(Ordering::Relaxed),
            scrub_bytes_verified: self.shared.scrub.bytes_verified.load(Ordering::Relaxed),
            scrub_errors_found: self.shared.scrub.errors_found.load(Ordering::Relaxed),
            scrub_errors_healed: self.shared.scrub.errors_healed.load(Ordering::Relaxed),
        }
    }

    /// Graceful drain for SIGTERM/SIGINT: waits (up to `timeout`) for
    /// the applier to finish every batch committed to the WAL, takes a
    /// best-effort final checkpoint if time remains, then shuts down.
    /// Returns the final checkpoint, if one was written. The drained
    /// state is bit-identical to an uninterrupted run over the same
    /// committed prefix — the e2e gate the CLI's drain path is held to.
    pub fn drain(&self, timeout: Duration) -> Result<Option<CheckpointInfo>, ServerError> {
        let deadline = Instant::now() + timeout;
        let target = {
            let wal = lock_recover(&self.shared.wal);
            wal.stats().next_lsn.saturating_sub(1)
        };
        {
            let mut progress = lock_recover(&self.shared.progress);
            while progress.applied_lsn < target {
                if self.check_applier().is_err() || Instant::now() >= deadline {
                    break;
                }
                let (next, _) = wait_timeout_recover(
                    &self.shared.progress_cond,
                    progress,
                    Duration::from_millis(100),
                );
                progress = next;
            }
        }
        // Best effort: a failed or timed-out checkpoint only means the
        // next boot replays more log, never that it loses anything.
        let checkpoint = if Instant::now() < deadline && self.check_applier().is_ok() {
            self.checkpoint().ok()
        } else {
            None
        };
        self.shutdown()?;
        Ok(checkpoint)
    }

    /// Stops the applier (after it drains the queue) and joins it.
    /// Idempotent; also run by `Drop`. Always succeeds: an applier that
    /// died earlier is already reported through [`EngineHost::health`],
    /// and shutdown's job is only to stop serving cleanly.
    pub fn shutdown(&self) -> Result<(), ServerError> {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.queue_cond.notify_all();
        self.shared.space_cond.notify_all();
        let handle = lock_recover(&self.applier).take();
        if let Some(handle) = handle {
            if handle.join().is_err() {
                // Can only happen if a panic escaped catch_unwind (e.g.
                // inside the drain loop itself); record it.
                let mut h = lock_recover(&self.shared.health);
                if h.applier_dead.is_none() {
                    h.applier_dead = Some("applier panicked outside supervision".into());
                }
            }
        }
        // The scrubber polls the shutdown flag between (and inside) its
        // sleep slices; joining after the applier keeps WAL teardown
        // single-threaded.
        let scrubber = lock_recover(&self.scrubber).take();
        if let Some(handle) = scrubber {
            let _ = handle.join();
        }
        Ok(())
    }

    fn check_applier(&self) -> Result<(), ServerError> {
        let health = lock_recover(&self.shared.health);
        match health.applier_dead.as_ref() {
            Some(msg) => Err(ServerError::ApplierDead(msg.clone())),
            None => Ok(()),
        }
    }
}

impl Drop for EngineHost {
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}

/// The applier thread: drain → apply (supervised) → publish, until
/// shutdown or a terminal failure (which leaves the host serving
/// read-only from the last published epoch).
fn applier_loop(shared: Arc<Shared>, mut dynamic: DynamicPrsim, mut applied_lsn: u64) {
    loop {
        let mut tasks = {
            let mut q = lock_recover(&shared.queue);
            while q.tasks.is_empty() && !shared.shutdown.load(Ordering::Acquire) {
                q = wait_recover(&shared.queue_cond, q);
            }
            if q.tasks.is_empty() {
                return; // clean shutdown: queue fully drained
            }
            std::mem::take(&mut q.tasks)
        };
        // Coalesce: apply every drained batch, publish one epoch at the
        // end (checkpoints force an intermediate publish so the image
        // LSN always matches a published snapshot).
        let mut dirty = false;
        for task in tasks.drain(..) {
            match task {
                Task::Batch {
                    lsn,
                    updates,
                    bytes,
                } => {
                    if !shared.opts.applier_delay.is_zero() {
                        std::thread::sleep(shared.opts.applier_delay);
                    }
                    let panic_at = shared.opts.applier_panic_at_lsn;
                    // AssertUnwindSafe: on panic the closure's only
                    // captured mutable state, `dynamic`, is never touched
                    // again — the loop records the failure and returns,
                    // and the host serves the last *published* clone.
                    let applied = catch_unwind(AssertUnwindSafe(|| {
                        if panic_at == Some(lsn) {
                            panic!("injected applier panic at lsn {lsn}");
                        }
                        for update in updates {
                            dynamic.apply(update)?;
                        }
                        Ok::<(), prsim_core::PrsimError>(())
                    }));
                    release_inflight(&shared, bytes);
                    match applied {
                        Ok(Ok(())) => {
                            applied_lsn = lsn;
                            dirty = true;
                        }
                        Ok(Err(err)) => {
                            fail(&shared, format!("apply(lsn {lsn}): {err}"));
                            return;
                        }
                        Err(payload) => {
                            fail(
                                &shared,
                                format!(
                                    "panicked applying lsn {lsn}: {}",
                                    panic_message(payload.as_ref())
                                ),
                            );
                            return;
                        }
                    }
                }
                Task::Checkpoint { done } => {
                    if dirty {
                        redemote_if_resident(&shared, &mut dynamic, applied_lsn);
                        publish(&shared, &dynamic, applied_lsn);
                        dirty = false;
                    }
                    let result = write_checkpoint(&shared, &dynamic, applied_lsn);
                    if result.is_ok() {
                        let mut progress = lock_recover(&shared.progress);
                        progress.checkpoints += 1;
                    }
                    let _ = done.send(result);
                }
            }
        }
        if dirty {
            redemote_if_resident(&shared, &mut dynamic, applied_lsn);
            publish(&shared, &dynamic, applied_lsn);
        }
    }
}

/// Re-demotes the engine's arena after a drift rebuild left it resident
/// (incremental repair appends to the paged overlay in place; only a
/// full rebuild replaces the index with a resident one). Demote failure
/// keeps serving the resident rebuild — temporarily over budget — and
/// reports `paging broken` through [`EngineHost::health`] until a later
/// rebuild's demote succeeds.
fn redemote_if_resident(shared: &Shared, dynamic: &mut DynamicPrsim, applied_lsn: u64) {
    let Some(paged) = shared.opts.paged_options() else {
        return;
    };
    let rebuilt_resident = dynamic.engine().is_some_and(|e| e.index().is_resident());
    if !rebuilt_resident {
        return;
    }
    let path = arena_path(&shared.wal_dir, applied_lsn);
    match dynamic.page_out_index(Arc::clone(&shared.storage), &path, &paged) {
        Ok(()) => {
            let mut h = lock_recover(&shared.health);
            h.paging_broken = None;
        }
        Err(err) => {
            let mut h = lock_recover(&shared.health);
            h.paging_broken = Some(format!("re-demote after rebuild failed: {err}"));
        }
    }
}

/// Removes paged arena generations left by previous incarnations of
/// this host (recovery reconstitutes the index from the checkpoint and
/// log, so old generations are dead weight). Best-effort: a file we
/// cannot list or remove only wastes disk, it is never read again.
fn remove_stale_arenas(storage: &dyn Storage, wal_dir: &Path) {
    let Ok(paths) = storage.list(wal_dir) else {
        return;
    };
    for path in paths {
        let is_arena = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .is_some_and(|n| n.starts_with("arena-") && n.ends_with(".pages"));
        if is_arena {
            let _ = storage.remove_file(&path);
        }
    }
}

/// Returns one batch's reservation to the inflight budget.
fn release_inflight(shared: &Shared, bytes: usize) {
    let mut q = lock_recover(&shared.queue);
    q.inflight_batches = q.inflight_batches.saturating_sub(1);
    q.inflight_bytes = q.inflight_bytes.saturating_sub(bytes);
    shared.space_cond.notify_one();
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

/// Clones the repaired engine into a fresh epoch and swaps it in.
fn publish(shared: &Shared, dynamic: &DynamicPrsim, applied_lsn: u64) {
    let engine = dynamic
        .engine()
        .expect("incremental engine is always built")
        .clone();
    let mut progress = lock_recover(&shared.progress);
    let epoch = progress.epoch + 1;
    shared
        .snapshot
        .publish(Arc::new(EpochSnapshot::new(epoch, applied_lsn, engine)));
    progress.epoch = epoch;
    progress.applied_lsn = applied_lsn;
    progress.totals = dynamic.totals();
    shared.progress_cond.notify_all();
}

fn write_checkpoint(
    shared: &Shared,
    dynamic: &DynamicPrsim,
    applied_lsn: u64,
) -> Result<CheckpointInfo, String> {
    let engine = dynamic
        .engine()
        .expect("incremental engine is always built");
    // A paged arena streams its base runs back through the buffer pool
    // here, so an unhealed page fault fails the checkpoint (with the
    // previous checkpoint still in place) instead of poisoning it.
    let index_bytes = engine
        .index()
        .try_to_bytes()
        .map_err(|e| format!("checkpoint at lsn {applied_lsn}: serialize index: {e}"))?;
    let mut wal = lock_recover(&shared.wal);
    wal.write_checkpoint(applied_lsn, engine.graph(), &index_bytes)
        .map(|bytes| CheckpointInfo {
            lsn: applied_lsn,
            bytes,
        })
        .map_err(|e| format!("checkpoint at lsn {applied_lsn}: {e}"))
}

/// Records the applier's terminal error, flips the host to degraded
/// read-only serving, and wakes every waiter so nothing stays blocked
/// on progress that will never come.
fn fail(shared: &Shared, msg: String) {
    eprintln!("prsim-applier: fatal: {msg}");
    {
        let mut h = lock_recover(&shared.health);
        if h.applier_dead.is_none() {
            h.applier_dead = Some(msg);
        }
    }
    shared.shutdown.store(true, Ordering::Release);
    shared.progress_cond.notify_all();
    shared.space_cond.notify_all();
}
