//! Resident PRSim engine host: epoch-snapshot reads over a durable
//! update WAL.
//!
//! The CLI's one-shot commands rebuild or reload the index on every
//! invocation, which never exercises the incremental machinery the way
//! production traffic would. This crate keeps one engine alive:
//!
//! * **Queries** run against an immutable [`EpochSnapshot`] — a cheap
//!   clone of the whole engine (the postings arena, walk cache, π vector
//!   and graph are contiguous buffers) behind an `Arc` that readers grab
//!   lock-free relative to updates. A snapshot is never mutated, so an
//!   in-flight update batch can never block or tear a query.
//! * **Updates** are appended to a write-ahead log ([`wal`]) and fsynced
//!   *before* they are acknowledged, then drained by a background
//!   applier thread through [`prsim_core::DynamicPrsim`]'s repair path
//!   (tombstone repair, walk-cache invalidation, drift-budget rebuilds).
//!   Each drained batch run publishes a fresh epoch by atomically
//!   swapping the snapshot `Arc`.
//! * **Recovery** replays the log on start. [`DynamicPrsim`]'s repair is
//!   deterministic in the initial graph, configuration and update
//!   sequence, so a process that crashes — even SIGKILL mid-write — and
//!   restarts over the same log serves *bit-identical* query responses
//!   to an uninterrupted process that applied the same committed prefix.
//!   Checkpoints ([`wal::Wal::write_checkpoint`]) are rebuild points:
//!   recovery from a checkpoint re-selects hubs from the checkpointed
//!   graph exactly like a drift-budget rebuild would, and is itself
//!   deterministic — every recovery from the same (checkpoint, log) pair
//!   yields the same engine.
//!
//! ## Failure model
//!
//! The serving layer is built to *degrade*, not die:
//!
//! * All WAL I/O runs through the injectable [`storage`] layer, and the
//!   chaos suite drives it with [`fault::FaultyStorage`] schedules. The
//!   durability invariant under any schedule: **no acked update is ever
//!   lost, no unacked update is ever half-applied** — a failed append
//!   repairs its own tail before returning the error.
//! * The applier queue is bounded by batch count *and* bytes; an
//!   `update` past the bound blocks up to a budget, then fails with the
//!   retryable [`ServerError::Busy`].
//! * Every [`ServerError`] is classified [retryable or
//!   fatal](ServerError::retryable), and the line protocol surfaces the
//!   class (`err retryable …` / `err fatal …`).
//! * The applier runs under `catch_unwind`; a panic or unappliable
//!   record flips the host to a read-only *degraded* state that keeps
//!   serving the last published epoch (`health=degraded`), and a broken
//!   WAL is retried with exponential backoff instead of poisoning every
//!   future call.
//!
//! [`protocol`] exposes the host over a single-line text protocol
//! (`query` / `update` / `sync` / `stats` / `health` / `checkpoint` /
//! `shutdown`) on stdin/stdout or TCP; `prsim serve` is the CLI entry
//! point. The TCP front end is the supervised concurrent server in
//! [`conn`]: a bounded worker pool with per-read deadlines, per-line
//! byte budgets, an in-flight query admission gate, and graceful
//! SIGTERM/SIGINT drain (see [`signal`]). [`scrub`] runs the background
//! integrity scrubber that continuously re-verifies at-rest checksums
//! (cold WAL segments, checkpoint images, paged-arena pages) and heals
//! or degrades on bit-rot.
//!
//! [`DynamicPrsim`]: prsim_core::DynamicPrsim

// `signal` needs two raw `extern` declarations (no libc dependency);
// everything else stays `unsafe_code`-free, enforced per-module.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod conn;
pub mod host;
pub mod protocol;
pub mod scrub;
pub mod signal;
pub mod snapshot;
pub mod wal;

// The storage traits and the fault injector moved to `prsim-storage` so
// the core crate's buffer pool can share them; these aliases keep every
// pre-existing `prsim_server::storage::…` / `prsim_server::fault::…`
// path working.
pub use prsim_storage as storage;
pub use prsim_storage::fault;

pub use conn::{ChaosClient, ChaosReport, ConnOptions, InflightGate, ServeSummary};
pub use fault::{FaultPlan, FaultyStorage};
pub use host::{CheckpointInfo, EngineHost, Health, HostOptions, RecoveryReport, ServerStats};
pub use snapshot::{EpochSnapshot, SnapshotHandle};
pub use storage::{FsStorage, Storage, WalFile};

use std::fmt;
use std::io;

/// Errors surfaced by the serving layer.
#[derive(Debug)]
pub enum ServerError {
    /// WAL, checkpoint or socket I/O failed.
    Io(io::Error),
    /// The engine rejected a configuration, update or rebuild.
    Engine(prsim_core::PrsimError),
    /// A checkpoint's graph section failed to decode.
    Graph(prsim_graph::GraphError),
    /// The background applier thread died; the message is its last error.
    /// The host keeps serving reads from the last published epoch.
    ApplierDead(String),
    /// The bounded applier queue stayed full past the busy budget; the
    /// update was not accepted and can be retried.
    Busy {
        /// How long the call blocked waiting for queue space.
        waited_ms: u64,
    },
    /// The WAL rejected or failed the write; the update was **not**
    /// committed and can be retried (the host heals the log with
    /// exponential backoff).
    WalWrite(String),
    /// The server shed this request under overload (connection or
    /// in-flight query limits); retry after a short backoff.
    Overloaded(String),
}

impl ServerError {
    /// Whether a client may retry the exact same call and reasonably
    /// expect it to succeed. `Busy`, `WalWrite` and `Overloaded` are
    /// transient (overload, healing I/O); everything else is fatal for
    /// the request or the process.
    pub fn retryable(&self) -> bool {
        matches!(
            self,
            ServerError::Busy { .. } | ServerError::WalWrite(_) | ServerError::Overloaded(_)
        )
    }
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Io(e) => write!(f, "i/o: {e}"),
            ServerError::Engine(e) => write!(f, "engine: {e}"),
            ServerError::Graph(e) => write!(f, "graph: {e}"),
            ServerError::ApplierDead(msg) => write!(f, "applier thread died: {msg}"),
            ServerError::Busy { waited_ms } => {
                write!(f, "busy: queue full after waiting {waited_ms} ms")
            }
            ServerError::WalWrite(msg) => write!(f, "wal write failed: {msg}"),
            ServerError::Overloaded(msg) => write!(f, "overloaded: {msg}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<io::Error> for ServerError {
    fn from(e: io::Error) -> Self {
        ServerError::Io(e)
    }
}

impl From<prsim_core::PrsimError> for ServerError {
    fn from(e: prsim_core::PrsimError) -> Self {
        ServerError::Engine(e)
    }
}

impl From<prsim_graph::GraphError> for ServerError {
    fn from(e: prsim_graph::GraphError) -> Self {
        ServerError::Graph(e)
    }
}

#[cfg(test)]
mod send_sync_audit {
    //! Compile-time audit that everything crossing the applier/reader
    //! boundary is [`Send`] + [`Sync`]: the snapshot types here, and the
    //! engine/workspace/cache types they embed from `prsim-core` (none
    //! of which use interior mutability).

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn shared_types_are_send_sync() {
        assert_send_sync::<prsim_graph::DiGraph>();
        assert_send_sync::<prsim_core::PrsimIndex>();
        assert_send_sync::<prsim_core::WalkCache>();
        assert_send_sync::<prsim_core::Prsim>();
        assert_send_sync::<prsim_core::QueryWorkspace>();
        assert_send_sync::<prsim_core::DynamicPrsim>();
        assert_send_sync::<crate::EpochSnapshot>();
        assert_send_sync::<crate::SnapshotHandle>();
        assert_send_sync::<crate::EngineHost>();
        assert_send_sync::<crate::wal::Wal>();
        assert_send_sync::<crate::FsStorage>();
        assert_send_sync::<crate::FaultyStorage>();
    }
}
