//! Background integrity scrubber: continuous at-rest verification of
//! everything the server would need in a crash.
//!
//! Checksums are only worth what re-reads them. The WAL verifies
//! records at replay and the buffer pool verifies pages at fault time —
//! but an artifact nobody touches (a cold segment behind the applied
//! frontier, the checkpoint a recovery would boot from, an evicted
//! arena page) can rot for weeks and only announce itself during the
//! recovery that needed it intact. The scrubber closes that window: a
//! low-priority thread walks every cold artifact each cycle,
//! re-verifies its FNV-1a checksums from disk, and either **heals**
//! (the artifact is redundant or reconstructible: rewrite a page from
//! its clean resident frame, refresh a rotten checkpoint from the live
//! engine, drop a segment a fresh checkpoint provably covers) or
//! **degrades** the host (`health` reason `scrub: …`) when serving
//! state is the only copy left.
//!
//! Every at-rest read is double-checked before it counts as rot: a
//! transient in-flight corruption (a flipped read under fault
//! injection, a torn page cache) does not repeat, real rot does. The
//! scrubber never touches the live WAL tail's bytes beyond verifying
//! them — the tail is the appender's property, and rot there is
//! unhealable by definition (its records may be the only copy of acked
//! updates).
//!
//! Counters surface through `stats` as `scrub_cycles`,
//! `scrub_bytes_verified`, `scrub_errors_found`, `scrub_errors_healed`.

use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc};
use std::time::Duration;

use prsim_core::PageScrub;

use crate::host::{lock_recover, CheckpointInfo, Shared, Task};
use crate::storage::Storage;
use crate::wal;

/// Sleep slice between shutdown checks while idling between cycles —
/// bounds how long a drain waits on the scrubber.
const SLEEP_SLICE: Duration = Duration::from_millis(25);

/// How long one checkpoint-reply poll waits before re-checking for
/// shutdown (a checkpoint task queued behind a dead applier would
/// otherwise block the scrubber forever).
const REPLY_POLL: Duration = Duration::from_millis(100);

/// What one artifact check concluded.
enum Artifact {
    /// Bytes verified clean.
    Clean(u64),
    /// Confirmed at-rest rot (the detail names the first bad byte).
    Rotten(String),
    /// Transiently unreadable or concurrently removed — skip, next
    /// cycle retries.
    Skip,
}

/// The scrubber thread body: cycle, then sleep `interval` in
/// shutdown-checking slices, until the host shuts down (or its applier
/// dies — `fail` raises the same flag, and healing without an applier
/// to checkpoint through is impossible anyway).
pub(crate) fn scrub_loop(shared: Arc<Shared>, interval: Duration) {
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        run_cycle(&shared);
        let mut slept = Duration::ZERO;
        while slept < interval {
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            let slice = SLEEP_SLICE.min(interval - slept);
            std::thread::sleep(slice);
            slept += slice;
        }
    }
}

/// One full verification pass over cold segments, checkpoint images,
/// paged-arena pages and the live tail's sealed prefix.
fn run_cycle(shared: &Shared) {
    let mut found = 0u64;
    let mut healed = 0u64;
    let mut bytes = 0u64;
    let mut unhealable: Vec<String> = Vec::new();
    let storage = shared.storage.as_ref();
    let dir = &shared.wal_dir;
    // The live boundary is captured once: everything below `live_seq`
    // is sealed, and the live segment's first `live_len` bytes are
    // immutable (append-only file, known-good length).
    let (live_seq, live_len) = lock_recover(&shared.wal).live_segment();

    // Cold WAL segments.
    let segments = wal::list_segments(storage, dir).unwrap_or_default();
    for (seq, path) in &segments {
        if *seq >= live_seq || shared.shutdown.load(Ordering::Acquire) {
            continue;
        }
        match check_segment(storage, path, None) {
            Artifact::Clean(n) => bytes += n,
            Artifact::Skip => {}
            Artifact::Rotten(detail) => {
                found += 1;
                match heal_segment(shared, path, *seq, &segments, &detail) {
                    Ok(()) => healed += 1,
                    Err(msg) => unhealable.push(msg),
                }
            }
        }
    }

    // Checkpoint images.
    let checkpoints = wal::list_checkpoints(storage, dir).unwrap_or_default();
    let newest_lsn = checkpoints.iter().map(|&(l, _)| l).max();
    for (lsn, path) in &checkpoints {
        if shared.shutdown.load(Ordering::Acquire) {
            continue;
        }
        match check_checkpoint(storage, path) {
            Artifact::Clean(n) => bytes += n,
            Artifact::Skip => {}
            Artifact::Rotten(detail) => {
                found += 1;
                match heal_checkpoint(shared, path, *lsn, newest_lsn, &detail) {
                    Ok(()) => healed += 1,
                    Err(msg) => unhealable.push(msg),
                }
            }
        }
    }

    // Paged-arena pages (the pool double-reads and heals internally).
    let snapshot = shared.snapshot.current();
    if let Some(pool) = snapshot.engine().index().paged_pool() {
        for page in 0..pool.page_count() {
            if shared.shutdown.load(Ordering::Acquire) {
                break;
            }
            match pool.scrub_page(page) {
                PageScrub::Clean { bytes: n } => bytes += n,
                PageScrub::Healed { bytes: n } => {
                    found += 1;
                    healed += 1;
                    bytes += n;
                }
                PageScrub::Unhealable { detail } => {
                    found += 1;
                    unhealable.push(detail);
                }
                PageScrub::Unreadable { .. } => {}
            }
        }
    }

    // The live segment's sealed prefix. Rot here is unhealable: these
    // records may be the only copy of acked-but-uncheckpointed updates.
    let live_path = wal::segment_path(dir, live_seq);
    match check_segment(storage, &live_path, Some(live_len as usize)) {
        Artifact::Clean(n) => bytes += n,
        Artifact::Skip => {}
        Artifact::Rotten(detail) => {
            found += 1;
            unhealable.push(format!(
                "live wal tail {} is rotten: {detail}",
                live_path.display()
            ));
        }
    }

    {
        let mut h = lock_recover(&shared.health);
        h.scrub_broken = unhealable.first().cloned();
    }
    for msg in &unhealable {
        eprintln!("prsim-scrub: unhealable: {msg}");
    }
    shared.scrub.cycles.fetch_add(1, Ordering::Relaxed);
    shared
        .scrub
        .bytes_verified
        .fetch_add(bytes, Ordering::Relaxed);
    shared
        .scrub
        .errors_found
        .fetch_add(found, Ordering::Relaxed);
    shared
        .scrub
        .errors_healed
        .fetch_add(healed, Ordering::Relaxed);
}

/// Verifies a segment's bytes (all of them, or the first `upto` for the
/// live tail), double-reading before declaring rot.
fn check_segment(storage: &dyn Storage, path: &Path, upto: Option<usize>) -> Artifact {
    let read = |storage: &dyn Storage| -> std::io::Result<Vec<u8>> {
        match upto {
            Some(n) => storage.read_prefix(path, n),
            None => storage.read(path),
        }
    };
    let Ok(data) = read(storage) else {
        return Artifact::Skip;
    };
    let limit = upto.unwrap_or(data.len());
    match wal::verify_segment_bytes(&data, limit) {
        Ok(n) => Artifact::Clean(n),
        Err(first) => {
            // Confirm: a flipped in-flight read does not repeat.
            let Ok(again) = read(storage) else {
                return Artifact::Skip;
            };
            match wal::verify_segment_bytes(&again, limit) {
                Ok(n) => Artifact::Clean(n),
                Err(_) => Artifact::Rotten(first),
            }
        }
    }
}

/// Verifies one checkpoint image end to end (header, payload checksum,
/// graph and index framing), double-reading before declaring rot.
fn check_checkpoint(storage: &dyn Storage, path: &Path) -> Artifact {
    let verify = || -> Option<Result<u64, String>> {
        if !storage.exists(path) {
            return None; // concurrently GC'd
        }
        let len = storage.file_len(path).unwrap_or(0);
        match wal::read_checkpoint(storage, path) {
            Ok(_) => Some(Ok(len)),
            Err(e) => Some(Err(e.to_string())),
        }
    };
    match verify() {
        None => Artifact::Skip,
        Some(Ok(n)) => Artifact::Clean(n),
        Some(Err(first)) => match verify() {
            None => Artifact::Skip,
            Some(Ok(n)) => Artifact::Clean(n),
            Some(Err(_)) => Artifact::Rotten(first),
        },
    }
}

/// Heals a rotten cold segment: a fresh checkpoint makes its records
/// redundant, after which the segment is removed. The segment is
/// provably covered when its successor's `first_lsn` fits inside the
/// new image's horizon; otherwise the rot sits in records only this
/// segment holds, and that is unhealable.
fn heal_segment(
    shared: &Shared,
    path: &Path,
    seq: u64,
    segments: &[(u64, PathBuf)],
    detail: &str,
) -> Result<(), String> {
    let name = path.display();
    let info = request_checkpoint(shared).map_err(|e| {
        format!("cold segment {name} is rotten ({detail}) and re-checkpoint failed: {e}")
    })?;
    if !shared.storage.exists(path) {
        return Ok(()); // the checkpoint's GC already collected it
    }
    if let Some((_, next_path)) = segments.iter().find(|(s, _)| *s > seq) {
        if let Ok(next_first) = wal::read_segment_first_lsn(shared.storage.as_ref(), next_path) {
            if next_first <= info.lsn + 1 {
                shared.storage.remove_file(path).map_err(|e| {
                    format!("cold segment {name} is rotten ({detail}); removal failed: {e}")
                })?;
                return Ok(());
            }
        }
    }
    Err(format!(
        "cold segment {name} is rotten ({detail}) and not covered by checkpoint lsn {}",
        info.lsn
    ))
}

/// Heals a rotten checkpoint: an older image is redundant (the newest
/// one recovers further) and is simply removed; the newest image is
/// refreshed from the live engine, which either overwrites it in place
/// (same LSN) or supersedes it (the applier moved on), after which the
/// rotten file goes.
fn heal_checkpoint(
    shared: &Shared,
    path: &Path,
    lsn: u64,
    newest_lsn: Option<u64>,
    detail: &str,
) -> Result<(), String> {
    let name = path.display();
    if Some(lsn) != newest_lsn {
        return shared.storage.remove_file(path).map_err(|e| {
            format!("redundant checkpoint {name} is rotten ({detail}); removal failed: {e}")
        });
    }
    let info = request_checkpoint(shared).map_err(|e| {
        format!("newest checkpoint {name} is rotten ({detail}) and refresh failed: {e}")
    })?;
    if info.lsn != lsn && shared.storage.exists(path) {
        shared.storage.remove_file(path).map_err(|e| {
            format!("superseded checkpoint {name} is rotten ({detail}); removal failed: {e}")
        })?;
    }
    Ok(())
}

/// Requests a checkpoint through the applier queue, polling the reply
/// so a shutdown (or a dead applier, which raises the same flag) cannot
/// strand the scrubber on a task nobody will ever drain.
fn request_checkpoint(shared: &Shared) -> Result<CheckpointInfo, String> {
    let (done, rx) = mpsc::channel();
    {
        let mut q = lock_recover(&shared.queue);
        q.tasks.push_back(Task::Checkpoint { done });
        shared.queue_cond.notify_one();
    }
    loop {
        match rx.recv_timeout(REPLY_POLL) {
            Ok(Ok(info)) => return Ok(info),
            Ok(Err(msg)) => return Err(msg),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if shared.shutdown.load(Ordering::Acquire) {
                    return Err("host shut down before the checkpoint ran".into());
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                return Err("applier dropped the checkpoint request".into());
            }
        }
    }
}
