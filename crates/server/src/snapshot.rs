//! Immutable epoch snapshots and the swap handle readers share.
//!
//! The applier thread never mutates a published engine: it repairs its
//! own private [`prsim_core::DynamicPrsim`], clones the resulting
//! [`Prsim`] (cheap — the arena, π vector, walk cache and CSR graph are
//! flat buffers) and *swaps* the `Arc` behind [`SnapshotHandle`].
//! Readers clone the `Arc` out and then query entirely lock-free; a
//! reader holding epoch `e` keeps it alive for the duration of its query
//! even while epoch `e+1` is being published.

use prsim_core::{Prsim, PrsimError, QueryStats, SimRankScores};
use prsim_graph::NodeId;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, RwLock};
use std::time::Duration;

/// One immutable published engine state.
#[derive(Debug)]
pub struct EpochSnapshot {
    epoch: u64,
    last_lsn: u64,
    engine: Prsim,
}

impl EpochSnapshot {
    /// Wraps an engine clone as epoch `epoch`, current through WAL
    /// record `last_lsn`.
    pub fn new(epoch: u64, last_lsn: u64, engine: Prsim) -> Self {
        EpochSnapshot {
            epoch,
            last_lsn,
            engine,
        }
    }

    /// Monotone epoch counter (1 is the boot snapshot).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Highest WAL LSN whose updates this snapshot reflects.
    pub fn last_lsn(&self) -> u64 {
        self.last_lsn
    }

    /// The frozen engine.
    pub fn engine(&self) -> &Prsim {
        &self.engine
    }

    /// Answers a single-source query with a seed-deterministic RNG: the
    /// same `(u, seed)` against the same snapshot state always returns
    /// the same scores, which is what lets the crash-recovery test
    /// compare servers bit-for-bit.
    pub fn query(&self, u: NodeId, seed: u64) -> Result<(SimRankScores, QueryStats), PrsimError> {
        let mut rng = StdRng::seed_from_u64(seed);
        self.engine.try_single_source(u, &mut rng)
    }

    /// [`EpochSnapshot::query`] under an optional wall-clock budget.
    /// `timeout = None` is bit-identical to the untimed entry point;
    /// with a budget the engine stops sampling at the deadline and the
    /// returned [`QueryStats::degraded`] says whether work was shed.
    pub fn query_with_deadline(
        &self,
        u: NodeId,
        seed: u64,
        timeout: Option<Duration>,
    ) -> Result<(SimRankScores, QueryStats), PrsimError> {
        let mut rng = StdRng::seed_from_u64(seed);
        self.engine
            .try_single_source_with_deadline(u, timeout, &mut rng)
    }
}

/// Shared slot holding the current [`EpochSnapshot`].
///
/// `current()` is a read-lock held only long enough to clone the `Arc`
/// (publish takes the write lock equally briefly), so queries never wait
/// on update application — only on the pointer swap itself.
#[derive(Debug)]
pub struct SnapshotHandle {
    slot: RwLock<Arc<EpochSnapshot>>,
}

impl SnapshotHandle {
    /// Creates the handle with its boot snapshot.
    pub fn new(first: EpochSnapshot) -> Self {
        SnapshotHandle {
            slot: RwLock::new(Arc::new(first)),
        }
    }

    /// The current snapshot; the caller keeps it alive across publishes.
    ///
    /// Recovers from lock poisoning: a snapshot is immutable once
    /// published, so a panic while some thread held the lock cannot have
    /// left the *pointed-to* state torn — serving the last published
    /// epoch is exactly the degraded-mode contract.
    pub fn current(&self) -> Arc<EpochSnapshot> {
        self.slot.read().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Atomically replaces the published snapshot. Recovers from lock
    /// poisoning for the same reason as [`SnapshotHandle::current`]: the
    /// slot only ever holds a complete `Arc`.
    pub fn publish(&self, next: Arc<EpochSnapshot>) {
        *self.slot.write().unwrap_or_else(|e| e.into_inner()) = next;
    }
}
