//! Line protocol for `prsim serve`.
//!
//! One request per line, one response line per request. Responses start
//! with `ok` or `err`. The grammar (tokens are space-separated):
//!
//! | request | response |
//! |---|---|
//! | `query U [top=K] [seed=S]` | `ok epoch=E lsn=L node=U entries=N top K v:score …` |
//! | `update + U V [- U V …]` | `ok lsn=L queued=K` (sent after fsync) |
//! | `sync` | `ok applied_lsn=L epoch=E` (barrier: durable ⇒ applied) |
//! | `stats` | `ok epoch=… applied_lsn=… …` (see [`crate::host::ServerStats::render`]) |
//! | `checkpoint` | `ok checkpoint lsn=L bytes=B` |
//! | `shutdown` | `ok bye`, then the server exits |
//!
//! `query` is seed-deterministic: the same `U`, `seed` and engine state
//! produce the same response bytes (scores are printed with Rust's
//! shortest round-trip `f64` formatting), which is what the
//! crash-recovery CI gate compares. The default seed is derived from
//! `U` so even seedless queries are reproducible.
//!
//! Transport is stdin/stdout by default or TCP with `--listen` (the
//! server prints `listening <addr>` once the socket is bound;
//! connections are served sequentially and the host outlives them — a
//! client disconnect never tears down served state).

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpListener;

use prsim_graph::EdgeUpdate;

use crate::host::EngineHost;

/// Default `top=` for `query` responses.
const DEFAULT_TOP: usize = 10;

/// Seed mixer for seedless queries (keeps them deterministic per node).
const DEFAULT_SEED_SALT: u64 = 0x5EED_CAFE;

/// Handles one request line; the `bool` is true when the client asked
/// the server to shut down.
pub fn handle_line(host: &EngineHost, line: &str) -> (String, bool) {
    let mut tokens = line.split_whitespace();
    let response = match tokens.next() {
        None => return (String::new(), false), // blank line: no response
        Some("query") => handle_query(host, tokens),
        Some("update") => handle_update(host, tokens),
        Some("sync") => match host.sync() {
            Ok((applied_lsn, epoch)) => Ok(format!("ok applied_lsn={applied_lsn} epoch={epoch}")),
            Err(e) => Err(e.to_string()),
        },
        Some("stats") => Ok(format!("ok {}", host.stats().render())),
        Some("checkpoint") => match host.checkpoint() {
            Ok(info) => Ok(format!(
                "ok checkpoint lsn={} bytes={}",
                info.lsn, info.bytes
            )),
            Err(e) => Err(e.to_string()),
        },
        Some("shutdown") => return ("ok bye".into(), true),
        Some(other) => Err(format!("unknown command {other:?}")),
    };
    match response {
        Ok(line) => (line, false),
        Err(msg) => (format!("err {msg}"), false),
    }
}

fn handle_query<'a>(
    host: &EngineHost,
    mut tokens: impl Iterator<Item = &'a str>,
) -> Result<String, String> {
    let u: u32 = tokens
        .next()
        .ok_or("query needs a node id")?
        .parse()
        .map_err(|_| "query node id must be a u32".to_string())?;
    let mut top = DEFAULT_TOP;
    let mut seed = u64::from(u) ^ DEFAULT_SEED_SALT;
    for token in tokens {
        if let Some(v) = token.strip_prefix("top=") {
            top = v.parse().map_err(|_| format!("bad top= value {v:?}"))?;
        } else if let Some(v) = token.strip_prefix("seed=") {
            seed = v.parse().map_err(|_| format!("bad seed= value {v:?}"))?;
        } else {
            return Err(format!("unknown query option {token:?}"));
        }
    }
    let snapshot = host.snapshot();
    let (scores, _) = snapshot.query(u, seed).map_err(|e| e.to_string())?;
    let ranked = scores.top_k(top);
    let mut out = format!(
        "ok epoch={} lsn={} node={u} entries={} top {}",
        snapshot.epoch(),
        snapshot.last_lsn(),
        scores.len(),
        ranked.len()
    );
    for (v, s) in ranked {
        out.push_str(&format!(" {v}:{s}"));
    }
    Ok(out)
}

fn handle_update<'a>(
    host: &EngineHost,
    tokens: impl Iterator<Item = &'a str>,
) -> Result<String, String> {
    let tokens: Vec<&str> = tokens.collect();
    if tokens.is_empty() {
        return Err("update needs at least one `+ U V` or `- U V` triple".into());
    }
    if tokens.len() % 3 != 0 {
        return Err("update arguments must be (op, u, v) triples".into());
    }
    let mut updates = Vec::with_capacity(tokens.len() / 3);
    for triple in tokens.chunks_exact(3) {
        let u: u32 = triple[1]
            .parse()
            .map_err(|_| format!("bad node id {:?}", triple[1]))?;
        let v: u32 = triple[2]
            .parse()
            .map_err(|_| format!("bad node id {:?}", triple[2]))?;
        updates.push(match triple[0] {
            "+" => EdgeUpdate::Insert(u, v),
            "-" => EdgeUpdate::Delete(u, v),
            op => return Err(format!("bad update op {op:?} (want + or -)")),
        });
    }
    let queued = updates.len();
    let lsn = host.update(updates).map_err(|e| e.to_string())?;
    Ok(format!("ok lsn={lsn} queued={queued}"))
}

/// Serves one request stream until EOF or `shutdown`; returns whether
/// shutdown was requested. Responses are flushed per line so interactive
/// and scripted clients both see acks promptly.
pub fn serve_stream<R: BufRead, W: Write>(
    host: &EngineHost,
    reader: R,
    writer: &mut W,
) -> io::Result<bool> {
    for line in reader.lines() {
        let line = line?;
        let (response, quit) = handle_line(host, &line);
        if !response.is_empty() {
            writeln!(writer, "{response}")?;
            writer.flush()?;
        }
        if quit {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Serves stdin/stdout until EOF or `shutdown`, then shuts the host
/// down cleanly.
pub fn serve_stdio(host: &EngineHost) -> io::Result<()> {
    let stdin = io::stdin();
    let mut stdout = io::stdout().lock();
    serve_stream(host, stdin.lock(), &mut stdout)?;
    host.shutdown().map_err(|e| io::Error::other(e.to_string()))
}

/// Serves TCP connections sequentially until a client sends `shutdown`,
/// then shuts the host down cleanly. The bound address is printed as
/// `listening <addr>` by the CLI before this is called.
pub fn serve_tcp(host: &EngineHost, listener: TcpListener) -> io::Result<()> {
    for stream in listener.incoming() {
        let stream = stream?;
        let mut writer = stream.try_clone()?;
        let reader = BufReader::new(stream);
        // A client that disconnects mid-line must not kill the server.
        match serve_stream(host, reader, &mut writer) {
            Ok(true) => break,
            Ok(false) => {}
            Err(err) if err.kind() == io::ErrorKind::BrokenPipe => {}
            Err(err) if err.kind() == io::ErrorKind::ConnectionReset => {}
            Err(err) => return Err(err),
        }
    }
    host.shutdown().map_err(|e| io::Error::other(e.to_string()))
}
