//! Line protocol for `prsim serve`.
//!
//! One request per line, one response line per request. Responses start
//! with `ok` or `err`. The grammar (tokens are space-separated):
//!
//! | request | response |
//! |---|---|
//! | `query U [top=K] [seed=S] [timeout=MS]` | `ok epoch=E lsn=L node=U entries=N top K v:score …` |
//! | `update + U V [- U V …]` | `ok lsn=L queued=K` (sent after fsync) |
//! | `sync` | `ok applied_lsn=L epoch=E` (barrier: durable ⇒ applied) |
//! | `stats` | `ok epoch=… applied_lsn=… …` (see [`crate::host::ServerStats::render`]) |
//! | `health` | `ok health=ok` or `ok health=degraded reason=…` |
//! | `checkpoint` | `ok checkpoint lsn=L bytes=B` |
//! | `shutdown` | `ok bye`, then the server exits |
//!
//! ## Error taxonomy
//!
//! Server-side failures render as `err retryable <msg>` (transient —
//! the same request may succeed if retried: a full applier queue, a
//! healing WAL, a shed under overload) or `err fatal <msg>` (it will
//! not: unappliable update, dead applier). Malformed requests render
//! `err fatal parse <msg>`: retrying the same bytes can never succeed,
//! and the `parse` marker lets clients and fuzzers distinguish protocol
//! garbage from a server-side failure.
//!
//! `query` is seed-deterministic: the same `U`, `seed` and engine state
//! produce the same response bytes (scores are printed with Rust's
//! shortest round-trip `f64` formatting), which is what the
//! crash-recovery CI gate compares. The default seed is derived from
//! `U` so even seedless queries are reproducible. A `timeout=MS` query
//! may stop sampling at the deadline; it then reports the estimate over
//! the samples drawn so far and appends ` degraded=true` (timed queries
//! that finish append ` degraded=false`, untimed queries append
//! nothing, keeping their response bytes stable across versions).
//!
//! Transport is stdin/stdout by default or TCP with `--listen` (the
//! server prints `listening <addr>` once the socket is bound). The TCP
//! front end is the supervised concurrent server in [`crate::conn`]: a
//! bounded worker pool where a client disconnect never tears down
//! served state, a client that stalls past the per-read deadline is
//! dropped, and excess connections or queries are shed with retryable
//! errors.

use std::io::{self, BufRead, Write};
use std::time::Duration;

use prsim_graph::EdgeUpdate;

use crate::conn::InflightGate;
use crate::host::EngineHost;
use crate::ServerError;

/// Default `top=` for `query` responses.
const DEFAULT_TOP: usize = 10;

/// Seed mixer for seedless queries (keeps them deterministic per node).
const DEFAULT_SEED_SALT: u64 = 0x5EED_CAFE;

/// A handler's verdict, carrying enough structure to render the error
/// taxonomy: protocol-level garbage is always fatal for the request —
/// retrying the same bytes cannot succeed.
enum Reply {
    /// Rendered `ok …` line.
    Ok(String),
    /// Malformed request: `err fatal parse <msg>`.
    BadRequest(String),
    /// The host failed the request: `err retryable|fatal <msg>`.
    Failed(ServerError),
}

impl Reply {
    fn render(self) -> String {
        match self {
            Reply::Ok(line) => line,
            Reply::BadRequest(msg) => format!("err fatal parse {msg}"),
            Reply::Failed(e) => {
                let class = if e.retryable() { "retryable" } else { "fatal" };
                format!("err {class} {e}")
            }
        }
    }
}

/// Handles one request line; the `bool` is true when the client asked
/// the server to shut down.
pub fn handle_line(host: &EngineHost, line: &str) -> (String, bool) {
    handle_line_gated(host, line, None)
}

/// [`handle_line`] with an optional in-flight query admission gate: a
/// `query` that cannot acquire a slot is shed with
/// `err retryable overloaded …` instead of queueing unboundedly behind
/// every other client's queries. Non-query verbs never contend for the
/// gate (they are bounded by their own backpressure — the applier
/// queue — or are O(1) reads).
pub fn handle_line_gated(
    host: &EngineHost,
    line: &str,
    gate: Option<&InflightGate>,
) -> (String, bool) {
    let mut tokens = line.split_whitespace();
    let reply = match tokens.next() {
        None => return (String::new(), false), // blank line: no response
        Some("query") => {
            let _permit = match gate.map(InflightGate::try_acquire) {
                Some(None) => {
                    return (
                        Reply::Failed(ServerError::Overloaded(format!(
                            "query shed at {} in flight, retry later",
                            gate.expect("checked above").limit()
                        )))
                        .render(),
                        false,
                    )
                }
                Some(permit @ Some(_)) => permit,
                None => None,
            };
            handle_query(host, tokens)
        }
        Some("update") => handle_update(host, tokens),
        Some("sync") => match host.sync() {
            Ok((applied_lsn, epoch)) => {
                Reply::Ok(format!("ok applied_lsn={applied_lsn} epoch={epoch}"))
            }
            Err(e) => Reply::Failed(e),
        },
        Some("stats") => Reply::Ok(format!("ok {}", host.stats().render())),
        Some("health") => Reply::Ok(format!("ok health={}", host.health().render())),
        Some("checkpoint") => match host.checkpoint() {
            Ok(info) => Reply::Ok(format!(
                "ok checkpoint lsn={} bytes={}",
                info.lsn, info.bytes
            )),
            Err(e) => Reply::Failed(e),
        },
        Some("shutdown") => return ("ok bye".into(), true),
        Some(other) => Reply::BadRequest(format!("unknown command {other:?}")),
    };
    (reply.render(), false)
}

fn handle_query<'a>(host: &EngineHost, mut tokens: impl Iterator<Item = &'a str>) -> Reply {
    let u: u32 = match tokens.next() {
        None => return Reply::BadRequest("query needs a node id".into()),
        Some(t) => match t.parse() {
            Ok(u) => u,
            Err(_) => return Reply::BadRequest("query node id must be a u32".into()),
        },
    };
    let mut top = DEFAULT_TOP;
    let mut seed = u64::from(u) ^ DEFAULT_SEED_SALT;
    let mut timeout = None;
    for token in tokens {
        if let Some(v) = token.strip_prefix("top=") {
            top = match v.parse() {
                Ok(k) => k,
                Err(_) => return Reply::BadRequest(format!("bad top= value {v:?}")),
            };
        } else if let Some(v) = token.strip_prefix("seed=") {
            seed = match v.parse() {
                Ok(s) => s,
                Err(_) => return Reply::BadRequest(format!("bad seed= value {v:?}")),
            };
        } else if let Some(v) = token.strip_prefix("timeout=") {
            timeout = match v.parse::<u64>() {
                Ok(ms) => Some(Duration::from_millis(ms)),
                Err(_) => return Reply::BadRequest(format!("bad timeout= value {v:?}")),
            };
        } else {
            return Reply::BadRequest(format!("unknown query option {token:?}"));
        }
    }
    let snapshot = host.snapshot();
    let (scores, stats) = match snapshot.query_with_deadline(u, seed, timeout) {
        Ok(r) => r,
        Err(e) => return Reply::Failed(ServerError::Engine(e)),
    };
    let ranked = scores.top_k(top);
    let mut out = format!(
        "ok epoch={} lsn={} node={u} entries={} top {}",
        snapshot.epoch(),
        snapshot.last_lsn(),
        scores.len(),
        ranked.len()
    );
    for (v, s) in ranked {
        out.push_str(&format!(" {v}:{s}"));
    }
    if timeout.is_some() {
        out.push_str(&format!(" degraded={}", stats.degraded));
    }
    Reply::Ok(out)
}

fn handle_update<'a>(host: &EngineHost, tokens: impl Iterator<Item = &'a str>) -> Reply {
    let tokens: Vec<&str> = tokens.collect();
    if tokens.is_empty() {
        return Reply::BadRequest("update needs at least one `+ U V` or `- U V` triple".into());
    }
    if tokens.len() % 3 != 0 {
        return Reply::BadRequest("update arguments must be (op, u, v) triples".into());
    }
    let mut updates = Vec::with_capacity(tokens.len() / 3);
    for triple in tokens.chunks_exact(3) {
        let u: u32 = match triple[1].parse() {
            Ok(u) => u,
            Err(_) => return Reply::BadRequest(format!("bad node id {:?}", triple[1])),
        };
        let v: u32 = match triple[2].parse() {
            Ok(v) => v,
            Err(_) => return Reply::BadRequest(format!("bad node id {:?}", triple[2])),
        };
        updates.push(match triple[0] {
            "+" => EdgeUpdate::Insert(u, v),
            "-" => EdgeUpdate::Delete(u, v),
            op => return Reply::BadRequest(format!("bad update op {op:?} (want + or -)")),
        });
    }
    let queued = updates.len();
    match host.update(updates) {
        Ok(lsn) => Reply::Ok(format!("ok lsn={lsn} queued={queued}")),
        Err(e) => Reply::Failed(e),
    }
}

/// Serves one request stream until EOF or `shutdown`; returns whether
/// shutdown was requested. Responses are flushed per line so interactive
/// and scripted clients both see acks promptly.
pub fn serve_stream<R: BufRead, W: Write>(
    host: &EngineHost,
    reader: R,
    writer: &mut W,
) -> io::Result<bool> {
    for line in reader.lines() {
        let line = line?;
        let (response, quit) = handle_line(host, &line);
        if !response.is_empty() {
            writeln!(writer, "{response}")?;
            writer.flush()?;
        }
        if quit {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Serves stdin/stdout until EOF or `shutdown`, then shuts the host
/// down cleanly.
pub fn serve_stdio(host: &EngineHost) -> io::Result<()> {
    let stdin = io::stdin();
    let mut stdout = io::stdout().lock();
    serve_stream(host, stdin.lock(), &mut stdout)?;
    host.shutdown().map_err(|e| io::Error::other(e.to_string()))
}
