//! Supervised concurrent TCP front end for the line protocol.
//!
//! The sequential `serve_tcp` loop this replaces had a trivial failure
//! mode: one slow client wedged everyone behind it. [`serve_supervised`]
//! instead runs a bounded worker pool over `std::thread::scope`:
//!
//! * **Connection cap** — at most [`ConnOptions::max_clients`] live
//!   connections; an excess connection is written one line,
//!   `err retryable overloaded …`, and closed. The shed is cheap by
//!   construction (no worker is spawned for it).
//! * **Admission gate** — [`InflightGate`] bounds the queries executing
//!   at any instant across *all* connections; a query past the bound is
//!   shed with `err retryable overloaded …` instead of queueing without
//!   limit behind every other client's work.
//! * **Slowloris defense** — every socket read carries a short poll
//!   deadline ([`POLL_TICK`]); a client that stays silent past the
//!   configured idle budget is dropped, and one that streams bytes
//!   without ever sending a newline is cut off at
//!   [`ConnOptions::max_line_bytes`] with `err fatal parse …`.
//! * **Isolation** — a worker that hits a client-side error (reset,
//!   broken pipe, timeout) drops only its own connection; the host and
//!   every other client are untouched. Responses are byte-identical to
//!   the sequential server for any interleaving of per-client scripts,
//!   because each line is handled by the same pure
//!   [`protocol::handle_line_gated`] path against an epoch snapshot.
//! * **Drain** — when the external `stop` flag flips (SIGTERM/SIGINT,
//!   see [`crate::signal`]) or a client sends `shutdown`, the listener
//!   stops accepting and every worker closes its connection at the next
//!   line boundary; in-flight requests finish first.
//!
//! [`ChaosClient`] is the adversarial counterpart used by the tests: a
//! seed-scheduled client that interleaves valid queries with garbage
//! frames, half-written lines, stalls and mid-query disconnects, so the
//! supervisor's isolation claims are exercised rather than assumed.

use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

use crate::host::EngineHost;
use crate::protocol;

/// Per-read socket poll deadline: how quickly a blocked worker notices
/// a drain request. Short enough that drain latency is negligible, long
/// enough that polling idle sockets costs nothing measurable.
pub const POLL_TICK: Duration = Duration::from_millis(100);

/// Accept-loop poll deadline (the listener is non-blocking so the loop
/// can watch the stop flag).
const ACCEPT_TICK: Duration = Duration::from_millis(10);

/// Socket write deadline. A client that stops draining responses for
/// this long is dropped rather than allowed to wedge its worker.
const WRITE_TIMEOUT: Duration = Duration::from_secs(1);

/// Read-buffer chunk size for the per-connection line reader.
const READ_CHUNK: usize = 4096;

/// Tuning knobs for [`serve_supervised`].
#[derive(Clone, Debug)]
pub struct ConnOptions {
    /// Maximum concurrently served connections; excess connections are
    /// shed with `err retryable overloaded` and closed.
    pub max_clients: usize,
    /// Maximum queries executing at any instant across all connections
    /// (the [`InflightGate`] bound).
    pub max_inflight_queries: usize,
    /// Idle budget per connection: a client that sends no bytes for
    /// this long is dropped. `None` tolerates arbitrarily idle clients.
    pub read_timeout: Option<Duration>,
    /// Per-line byte budget: a connection that streams more than this
    /// without a newline gets `err fatal parse …` and is closed.
    pub max_line_bytes: usize,
    /// Budget for graceful drain on SIGTERM/SIGINT (consumed by the
    /// CLI via [`crate::host::EngineHost::drain`], carried here so the
    /// serve entry point owns one options struct).
    pub drain_timeout: Duration,
}

impl Default for ConnOptions {
    fn default() -> Self {
        ConnOptions {
            max_clients: 64,
            max_inflight_queries: 256,
            read_timeout: None,
            max_line_bytes: 1 << 20,
            drain_timeout: Duration::from_millis(5000),
        }
    }
}

/// Global in-flight query admission gate: a lock-free counting
/// semaphore with shed-instead-of-wait semantics.
#[derive(Debug)]
pub struct InflightGate {
    limit: usize,
    inflight: AtomicUsize,
    shed: AtomicU64,
}

impl InflightGate {
    /// A gate admitting at most `limit` concurrent queries.
    pub fn new(limit: usize) -> Self {
        InflightGate {
            limit: limit.max(1),
            inflight: AtomicUsize::new(0),
            shed: AtomicU64::new(0),
        }
    }

    /// The admission bound.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Queries executing right now.
    pub fn in_flight(&self) -> usize {
        self.inflight.load(Ordering::Acquire)
    }

    /// Queries shed at the bound so far.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Tries to admit one query; `None` means the caller must shed it
    /// (the gate never blocks — overload is answered, not queued).
    pub fn try_acquire(&self) -> Option<GatePermit<'_>> {
        let mut cur = self.inflight.load(Ordering::Acquire);
        loop {
            if cur >= self.limit {
                self.shed.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            match self.inflight.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(GatePermit { gate: self }),
                Err(now) => cur = now,
            }
        }
    }
}

/// An admitted query's slot; dropping it releases the slot.
#[derive(Debug)]
pub struct GatePermit<'a> {
    gate: &'a InflightGate,
}

impl Drop for GatePermit<'_> {
    fn drop(&mut self) {
        self.gate.inflight.fetch_sub(1, Ordering::Release);
    }
}

/// What a [`serve_supervised`] run did, for the CLI's exit log and the
/// tests' assertions.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeSummary {
    /// Connections accepted *and* served by a worker.
    pub connections: u64,
    /// Connections shed at the `max_clients` bound.
    pub overload_rejects: u64,
    /// Queries shed at the in-flight gate.
    pub gate_shed: u64,
    /// Whether a client's `shutdown` verb (as opposed to the external
    /// stop flag) ended the run.
    pub shutdown_requested: bool,
}

/// Whether a connection-level error means *this client* went away or
/// stalled (drop the connection, keep the server) as opposed to a
/// server-side I/O failure worth logging.
fn is_client_error(err: &io::Error) -> bool {
    matches!(
        err.kind(),
        io::ErrorKind::BrokenPipe
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::WouldBlock
            | io::ErrorKind::TimedOut
    )
}

/// Serves concurrent TCP connections until the external `stop` flag
/// flips or a client sends `shutdown`. Returns after every worker has
/// closed its connection; the caller then decides between
/// [`EngineHost::shutdown`] (client-requested) and
/// [`EngineHost::drain`](crate::host::EngineHost::drain) (signal).
///
/// The host is only borrowed: supervised serving never consumes or
/// tears down engine state, so a drain after this returns still sees
/// every committed update.
pub fn serve_supervised(
    host: &EngineHost,
    listener: TcpListener,
    opts: &ConnOptions,
    stop: &AtomicBool,
) -> io::Result<ServeSummary> {
    listener.set_nonblocking(true)?;
    let gate = InflightGate::new(opts.max_inflight_queries);
    let draining = AtomicBool::new(false);
    let shutdown_requested = AtomicBool::new(false);
    let active = AtomicUsize::new(0);
    let connections = AtomicU64::new(0);
    let overload_rejects = AtomicU64::new(0);

    let result = std::thread::scope(|scope| -> io::Result<()> {
        loop {
            if stop.load(Ordering::SeqCst) || draining.load(Ordering::SeqCst) {
                return Ok(());
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    if active.load(Ordering::SeqCst) >= opts.max_clients {
                        overload_rejects.fetch_add(1, Ordering::Relaxed);
                        shed_connection(stream, opts.max_clients);
                        continue;
                    }
                    active.fetch_add(1, Ordering::SeqCst);
                    connections.fetch_add(1, Ordering::Relaxed);
                    let (gate, active) = (&gate, &active);
                    let (draining, shutdown_requested) = (&draining, &shutdown_requested);
                    scope.spawn(move || {
                        let peer = stream
                            .peer_addr()
                            .map(|a| a.to_string())
                            .unwrap_or_else(|_| "<unknown>".into());
                        let served = serve_conn(
                            host,
                            stream,
                            opts,
                            gate,
                            draining,
                            shutdown_requested,
                            stop,
                        );
                        active.fetch_sub(1, Ordering::SeqCst);
                        match served {
                            Ok(()) => {}
                            Err(err) if is_client_error(&err) => {
                                eprintln!("prsim serve: dropping client {peer}: {err}");
                            }
                            Err(err) => {
                                eprintln!("prsim serve: worker error for client {peer}: {err}");
                            }
                        }
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_TICK);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    // Fatal listener failure: release the workers before
                    // propagating, or the scope join would hang on
                    // clients that never disconnect.
                    draining.store(true, Ordering::SeqCst);
                    return Err(e);
                }
            }
        }
    });
    result?;

    Ok(ServeSummary {
        connections: connections.load(Ordering::Relaxed),
        overload_rejects: overload_rejects.load(Ordering::Relaxed),
        gate_shed: gate.shed(),
        shutdown_requested: shutdown_requested.load(Ordering::SeqCst),
    })
}

/// Writes the one-line overload shed and closes the connection. Best
/// effort: a client that vanished mid-shed is already gone.
fn shed_connection(mut stream: TcpStream, max_clients: usize) {
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let _ = writeln!(
        stream,
        "err retryable overloaded connection shed at {max_clients} clients, retry later"
    );
    let _ = stream.flush();
    let _ = stream.shutdown(Shutdown::Both);
}

/// Serves one connection: a bounded line reader over a polled socket.
fn serve_conn(
    host: &EngineHost,
    mut stream: TcpStream,
    opts: &ConnOptions,
    gate: &InflightGate,
    draining: &AtomicBool,
    shutdown_requested: &AtomicBool,
    stop: &AtomicBool,
) -> io::Result<()> {
    stream.set_read_timeout(Some(POLL_TICK))?;
    stream.set_write_timeout(Some(WRITE_TIMEOUT))?;
    // One-line replies are latency-bound, not bandwidth-bound: without
    // this, Nagle + delayed ACK can hold a reply's tail segment for
    // ~40 ms per request.
    let _ = stream.set_nodelay(true);
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; READ_CHUNK];
    let mut idle = Duration::ZERO;
    loop {
        if stop.load(Ordering::SeqCst) || draining.load(Ordering::SeqCst) {
            return Ok(());
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                // EOF with a final unterminated line still gets served:
                // scripted clients that forget the trailing newline
                // deserve their answer.
                if !buf.is_empty() {
                    let line = decode_line(&buf);
                    respond(host, &mut stream, &line, gate, draining, shutdown_requested)?;
                }
                return Ok(());
            }
            Ok(n) => {
                idle = Duration::ZERO;
                buf.extend_from_slice(&chunk[..n]);
                while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
                    if pos > opts.max_line_bytes {
                        // A completed line over budget is as fatal as an
                        // unterminated one — it must never reach the
                        // parser.
                        return refuse_oversized(&mut stream, opts.max_line_bytes);
                    }
                    let line = decode_line(&buf[..pos]);
                    buf.drain(..=pos);
                    let quit =
                        respond(host, &mut stream, &line, gate, draining, shutdown_requested)?;
                    if quit || draining.load(Ordering::SeqCst) || stop.load(Ordering::SeqCst) {
                        return Ok(());
                    }
                }
                if buf.len() > opts.max_line_bytes {
                    // Oversized-frame defense: answer once, then cut the
                    // stream off — the client can never finish this line
                    // into something parseable.
                    return refuse_oversized(&mut stream, opts.max_line_bytes);
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                idle += POLL_TICK;
                if let Some(budget) = opts.read_timeout {
                    if idle >= budget {
                        // Slowloris defense: silent past the budget.
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            format!("idle past the {budget:?} read budget"),
                        ));
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Rejects an over-budget frame: answer once with a structured parse
/// error, then cut the stream off — nothing this client sends on the
/// same connection can be trusted to frame correctly anymore.
fn refuse_oversized(stream: &mut TcpStream, max_line_bytes: usize) -> io::Result<()> {
    writeln!(
        stream,
        "err fatal parse line exceeds {max_line_bytes} bytes"
    )?;
    stream.flush()?;
    let _ = stream.shutdown(Shutdown::Both);
    Ok(())
}

/// Decodes one wire line: lossy UTF-8 (garbage bytes become U+FFFD and
/// parse as garbage rather than killing the connection) with the
/// protocol's optional trailing `\r` stripped.
fn decode_line(bytes: &[u8]) -> String {
    let line = String::from_utf8_lossy(bytes);
    line.trim_end_matches('\r').to_string()
}

/// Handles one decoded line and writes the response; returns whether
/// the client requested shutdown (which this records in the shared
/// flags so the accept loop and every sibling worker drain too).
fn respond(
    host: &EngineHost,
    stream: &mut TcpStream,
    line: &str,
    gate: &InflightGate,
    draining: &AtomicBool,
    shutdown_requested: &AtomicBool,
) -> io::Result<bool> {
    let (response, quit) = protocol::handle_line_gated(host, line, Some(gate));
    if !response.is_empty() {
        // One write_all, newline included: `writeln!` would issue the
        // body and the terminator as separate writes, i.e. separate TCP
        // segments, and the terminator segment is what Nagle holds.
        let mut out = response.into_bytes();
        out.push(b'\n');
        stream.write_all(&out)?;
        stream.flush()?;
    }
    if quit {
        shutdown_requested.store(true, Ordering::SeqCst);
        draining.store(true, Ordering::SeqCst);
    }
    Ok(quit)
}

/// A deterministic misbehaving client for the chaos tests: the same
/// `(addr, seed)` replays the same schedule of valid queries, garbage
/// frames (NUL bytes included), half-written lines with stalls, silent
/// stalls, and mid-query disconnects.
#[derive(Clone, Debug)]
pub struct ChaosClient {
    addr: String,
    seed: u64,
}

/// What a [`ChaosClient::run`] schedule observed.
#[derive(Clone, Copy, Debug, Default)]
pub struct ChaosReport {
    /// Scheduled actions performed.
    pub actions: u64,
    /// `ok …` response lines read back.
    pub ok_replies: u64,
    /// `err …` response lines read back.
    pub err_replies: u64,
    /// Deliberate disconnects plus connections the server dropped.
    pub disconnects: u64,
}

/// splitmix64: the chaos schedule's deterministic generator.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ChaosClient {
    /// A client that will attack `addr` on the schedule derived from
    /// `seed`.
    pub fn new(addr: impl Into<String>, seed: u64) -> Self {
        ChaosClient {
            addr: addr.into(),
            seed,
        }
    }

    /// Runs `actions` scheduled misbehaviors (queries target nodes
    /// `< max_node`) and reports what happened. Never panics: every
    /// connection failure is counted and retried with a fresh socket.
    pub fn run(&self, actions: usize, max_node: u32) -> ChaosReport {
        let mut state = self.seed ^ 0xC4A0_5C1E_11EB_D15E;
        let mut report = ChaosReport::default();
        let mut conn: Option<TcpStream> = None;
        for _ in 0..actions {
            report.actions += 1;
            let stream = match Self::ensure_conn(&mut conn, &self.addr) {
                Some(s) => s,
                None => {
                    report.disconnects += 1;
                    continue;
                }
            };
            let roll = splitmix64(&mut state);
            let outcome = match roll % 5 {
                0 | 1 => {
                    // Valid query — the server must answer it correctly
                    // no matter what this client did beforehand.
                    let u = (splitmix64(&mut state) % u64::from(max_node.max(1))) as u32;
                    let s = splitmix64(&mut state);
                    Self::transact(stream, format!("query {u} top=4 seed={s}\n").as_bytes())
                }
                2 => {
                    // Garbage frame with embedded NULs and non-UTF-8.
                    let junk = [
                        b'\x00', b'q', b'\xFF', b'\x00', b'u', b'e', b'\xFE', b'r', b'y', b'\n',
                    ];
                    Self::transact(stream, &junk)
                }
                3 => {
                    // Half-write then stall, then finish the line: the
                    // server must wait out the stall (within its idle
                    // budget) and still parse the whole line.
                    let u = (splitmix64(&mut state) % u64::from(max_node.max(1))) as u32;
                    let line = format!("query {u} top=2 seed=7\n");
                    let (a, b) = line.as_bytes().split_at(line.len() / 2);
                    if stream.write_all(a).is_err() {
                        Err(())
                    } else {
                        std::thread::sleep(Duration::from_millis(splitmix64(&mut state) % 50));
                        Self::transact(stream, b)
                    }
                }
                _ => {
                    // Mid-query disconnect: start a line, vanish.
                    let _ = stream.write_all(b"query 0 top=");
                    conn = None;
                    report.disconnects += 1;
                    continue;
                }
            };
            match outcome {
                Ok(reply) if reply.starts_with("ok") => report.ok_replies += 1,
                Ok(_) => report.err_replies += 1,
                Err(()) => {
                    conn = None;
                    report.disconnects += 1;
                }
            }
        }
        report
    }

    /// Connects (or reuses) the client socket with bounded timeouts.
    fn ensure_conn<'a>(conn: &'a mut Option<TcpStream>, addr: &str) -> Option<&'a mut TcpStream> {
        if conn.is_none() {
            let stream = TcpStream::connect(addr).ok()?;
            stream.set_read_timeout(Some(Duration::from_secs(5))).ok()?;
            stream
                .set_write_timeout(Some(Duration::from_secs(5)))
                .ok()?;
            let _ = stream.set_nodelay(true);
            *conn = Some(stream);
        }
        conn.as_mut()
    }

    /// Writes `bytes`, reads one reply line. `Err(())` means the server
    /// dropped this connection (which for garbage is a legal outcome).
    fn transact(stream: &mut TcpStream, bytes: &[u8]) -> Result<String, ()> {
        stream.write_all(bytes).map_err(|_| ())?;
        stream.flush().map_err(|_| ())?;
        let mut line = Vec::new();
        let mut byte = [0u8; 1];
        loop {
            match stream.read(&mut byte) {
                Ok(0) => return Err(()),
                Ok(_) if byte[0] == b'\n' => return Ok(String::from_utf8_lossy(&line).into_owned()),
                Ok(_) => line.push(byte[0]),
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return Err(()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_admits_to_limit_then_sheds_then_reopens() {
        let gate = InflightGate::new(2);
        let a = gate.try_acquire().expect("slot 1");
        let b = gate.try_acquire().expect("slot 2");
        assert_eq!(gate.in_flight(), 2);
        assert!(gate.try_acquire().is_none());
        assert_eq!(gate.shed(), 1);
        drop(a);
        let c = gate.try_acquire().expect("slot freed by drop");
        assert_eq!(gate.in_flight(), 2);
        drop(b);
        drop(c);
        assert_eq!(gate.in_flight(), 0);
    }

    #[test]
    fn gate_limit_floor_is_one() {
        let gate = InflightGate::new(0);
        assert_eq!(gate.limit(), 1);
        let p = gate.try_acquire().expect("a zero limit would deadlock");
        assert!(gate.try_acquire().is_none());
        drop(p);
    }

    #[test]
    fn decode_line_strips_cr_and_survives_garbage() {
        assert_eq!(decode_line(b"query 3\r"), "query 3");
        assert_eq!(decode_line(b""), "");
        let garbled = decode_line(&[b'q', 0xFF, 0x00, b'x']);
        assert!(garbled.contains('\u{FFFD}'));
        assert!(garbled.contains('\u{0}'));
    }
}
