//! Minimal SIGTERM/SIGINT latch without a libc dependency.
//!
//! The graceful-drain path needs exactly one bit: "a termination signal
//! arrived". Installing a handler requires `signal(2)`, which Rust's
//! std does not expose — and this workspace vendors no libc crate — so
//! this module declares the two C symbols it needs directly. The
//! handler body is async-signal-safe by construction: it performs a
//! single relaxed store to a static [`AtomicBool`] and returns.
//!
//! On non-Unix targets [`install_term_handler`] degrades to a flag that
//! never flips; the server then only stops via the `shutdown` verb,
//! which is the portable behavior it always had.

use std::sync::atomic::AtomicBool;

/// Set once a SIGTERM or SIGINT has been delivered.
static TERM_REQUESTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    use std::sync::atomic::Ordering;

    /// `SIGINT` on every Unix this builds for.
    const SIGINT: i32 = 2;
    /// `SIGTERM` on every Unix this builds for.
    const SIGTERM: i32 = 15;

    unsafe extern "C" {
        /// `signal(2)`: installs `handler` for `signum`, returning the
        /// previous disposition (or `SIG_ERR`, ignored here — failing
        /// to install leaves the default die-on-signal behavior, which
        /// is safe, just not graceful).
        fn signal(signum: i32, handler: usize) -> usize;
    }

    /// The installed handler: one atomic store, nothing else — the only
    /// kind of work that is legal in async-signal context.
    extern "C" fn on_signal(_signum: i32) {
        super::TERM_REQUESTED.store(true, Ordering::SeqCst);
    }

    pub(super) fn install() {
        let handler = on_signal as extern "C" fn(i32) as usize;
        // SAFETY: `signal` is the C library's signal(2); the handler we
        // register only stores to an atomic, which is async-signal-safe.
        unsafe {
            signal(SIGTERM, handler);
            signal(SIGINT, handler);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub(super) fn install() {}
}

/// Installs the SIGTERM/SIGINT handler (idempotent) and returns the
/// flag it flips. The serve loop polls this as its external stop bit
/// and runs a graceful drain when it goes high.
pub fn install_term_handler() -> &'static AtomicBool {
    imp::install();
    &TERM_REQUESTED
}
