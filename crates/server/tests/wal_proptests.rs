//! Property tests for the WAL: record codec round trips, and the
//! recovery invariant that *any* byte-level mangling of the log —
//! arbitrary-prefix truncation or single-byte corruption — still
//! replays to a clean prefix of the committed batches, never panics,
//! and leaves a log that keeps accepting appends. Mirrors the
//! corruption-proptest style of `crates/core/tests/serialization_proptests.rs`.

use proptest::prelude::*;
use prsim_graph::EdgeUpdate;
use prsim_server::wal::{decode_body, encode_body, Wal};
use std::fs::{self, OpenOptions};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Fresh per-case scratch directory (proptest runs cases in sequence,
/// but shrinking re-enters, so a counter keeps paths unique).
fn tmpdir() -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "prsim_wal_prop_{}_{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// One arbitrary update (op, u, v).
fn arb_update() -> impl Strategy<Value = EdgeUpdate> {
    (0u8..2, 0u32..10_000, 0u32..10_000).prop_map(|(op, u, v)| {
        if op == 0 {
            EdgeUpdate::Insert(u, v)
        } else {
            EdgeUpdate::Delete(u, v)
        }
    })
}

/// Arbitrary batches: up to 12 batches of up to 8 updates (empty
/// batches included — an empty batch is a legal record).
fn arb_batches() -> impl Strategy<Value = Vec<Vec<EdgeUpdate>>> {
    proptest::collection::vec(proptest::collection::vec(arb_update(), 0..8), 1..12)
}

/// Writes `batches` into a fresh WAL and returns its directory. Tiny
/// `segment_bytes` exercises rotation in most cases.
fn write_log(batches: &[Vec<EdgeUpdate>], segment_bytes: u64) -> PathBuf {
    let dir = tmpdir();
    let (mut wal, outcome) = Wal::open(&dir, segment_bytes, 0).unwrap();
    assert!(outcome.records.is_empty());
    for (i, batch) in batches.iter().enumerate() {
        let lsn = wal.append(batch).unwrap();
        assert_eq!(lsn, i as u64 + 1);
    }
    dir
}

/// Replays `dir` and asserts the recovered records are exactly a prefix
/// of `batches`; returns the prefix length.
fn assert_replays_prefix(dir: &PathBuf, segment_bytes: u64, batches: &[Vec<EdgeUpdate>]) -> usize {
    let (mut wal, outcome) = Wal::open(dir, segment_bytes, 0).unwrap();
    assert!(
        outcome.records.len() <= batches.len(),
        "no invented records"
    );
    for (i, record) in outcome.records.iter().enumerate() {
        assert_eq!(record.lsn, i as u64 + 1, "LSNs stay gap-free");
        assert_eq!(record.updates, batches[i], "record {i} content intact");
    }
    // The repaired log must keep accepting appends at the right LSN.
    let next = wal.append(&[EdgeUpdate::Insert(1, 2)]).unwrap();
    assert_eq!(next, outcome.records.len() as u64 + 1);
    outcome.records.len()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// encode/decode is the identity on arbitrary batches.
    #[test]
    fn body_codec_round_trips(updates in proptest::collection::vec(arb_update(), 0..64)) {
        let body = encode_body(&updates);
        let back = decode_body(&body).map_err(|e| format!("round trip rejected: {e}"))?;
        prop_assert_eq!(updates, back);
    }

    /// Any single-byte corruption of a body either decodes to *some*
    /// updates or errors — never panics.
    #[test]
    fn body_corruption_never_panics(updates in proptest::collection::vec(arb_update(), 1..32),
                                    pos in 0usize..1 << 12, mask in 1u8..255) {
        let mut body = encode_body(&updates);
        let at = pos % body.len();
        body[at] ^= mask;
        let _ = decode_body(&body);
    }

    /// A clean log replays every batch verbatim, across rotations.
    #[test]
    fn clean_log_replays_fully(batches in arb_batches(), seg in 64u64..4096) {
        let dir = write_log(&batches, seg);
        let n = assert_replays_prefix(&dir, seg, &batches);
        prop_assert_eq!(n, batches.len());
        fs::remove_dir_all(&dir).ok();
    }

    /// Truncating the log's *last* segment at an arbitrary byte (the
    /// shape a crash leaves: everything earlier was fsynced) recovers a
    /// prefix of the batches, with every fully-synced earlier record
    /// intact.
    #[test]
    fn arbitrary_tail_truncation_recovers_a_prefix(batches in arb_batches(),
                                                   seg in 64u64..4096,
                                                   cut_frac in 0.0f64..1.0) {
        let dir = write_log(&batches, seg);
        // Newest segment by name ordering.
        let mut segments: Vec<PathBuf> = fs::read_dir(&dir).unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.file_name().unwrap().to_string_lossy().starts_with("wal-"))
            .collect();
        segments.sort();
        let last = segments.last().unwrap();
        let len = fs::metadata(last).unwrap().len();
        let cut = (len as f64 * cut_frac) as u64;
        OpenOptions::new().write(true).open(last).unwrap().set_len(cut).unwrap();
        assert_replays_prefix(&dir, seg, &batches);
        fs::remove_dir_all(&dir).ok();
    }

    /// Flipping one arbitrary byte anywhere in any segment recovers a
    /// prefix (possibly shorter — corruption ahead of valid records
    /// discards them) and never panics.
    #[test]
    fn single_byte_corruption_recovers_a_prefix(batches in arb_batches(),
                                                seg in 64u64..4096,
                                                victim_raw in 0usize..64,
                                                pos in 0usize..1 << 16,
                                                mask in 1u8..255) {
        let dir = write_log(&batches, seg);
        let mut segments: Vec<PathBuf> = fs::read_dir(&dir).unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.file_name().unwrap().to_string_lossy().starts_with("wal-"))
            .collect();
        segments.sort();
        let victim = &segments[victim_raw % segments.len()];
        let mut bytes = fs::read(victim).unwrap();
        let at = pos % bytes.len();
        // Magic and version are load-bearing by design: corrupting them
        // makes open() refuse the file (operator intervention) rather than
        // silently repair what may be user data, so aim the flip past them.
        let at = if at < 12 { 12 + at % (bytes.len() - 12).max(1) } else { at };
        if at < bytes.len() {
            bytes[at] ^= mask;
            fs::write(victim, &bytes).unwrap();
        }
        assert_replays_prefix(&dir, seg, &batches);
        fs::remove_dir_all(&dir).ok();
    }
}
