//! Integration tests for the connection supervisor: concurrent clients
//! get byte-identical replies, a stalled client cannot block the rest,
//! overload is shed with retryable errors, oversized frames are fatal,
//! and seeded chaos clients never corrupt the server.

use prsim_core::{HubCount, PrsimConfig, QueryParams};
use prsim_gen::{chung_lu_undirected, ChungLuConfig};
use prsim_graph::DiGraph;
use prsim_server::protocol::{handle_line, handle_line_gated};
use prsim_server::{conn, ConnOptions, EngineHost, HostOptions, InflightGate};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("prsim_conn_test_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn test_graph() -> DiGraph {
    chung_lu_undirected(ChungLuConfig::new(300, 6.0, 2.0, 42))
}

fn options() -> HostOptions {
    let mut options = HostOptions::new(PrsimConfig {
        eps: 0.2,
        hubs: HubCount::Fixed(12),
        query: QueryParams::Practical { c_mult: 1.0 },
        walk_cache_budget: 32,
        build_threads: 2,
        ..Default::default()
    });
    options.segment_bytes = 4096;
    options
}

/// Binds an ephemeral listener and returns it with its address.
fn listener() -> (TcpListener, String) {
    let l = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = l.local_addr().unwrap().to_string();
    (l, addr)
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: &str) -> Self {
        let stream = TcpStream::connect(addr).expect("connects");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn request(&mut self, line: &str) -> String {
        writeln!(self.writer, "{line}").expect("request written");
        self.recv()
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("response read");
        line.trim_end().to_string()
    }

    /// Reads until EOF, returning whatever arrived.
    fn drain_to_eof(&mut self) -> String {
        let mut rest = String::new();
        loop {
            let mut line = String::new();
            match self.reader.read_line(&mut line) {
                Ok(0) => return rest,
                Ok(_) => rest.push_str(&line),
                Err(e) => panic!("read failed before EOF: {e}"),
            }
        }
    }
}

/// Sets the stop flag on drop so a panicking assertion inside a
/// `thread::scope` closure cannot deadlock the scope joining a server
/// thread that would otherwise never be told to stop.
struct StopGuard<'a>(&'a AtomicBool);

impl Drop for StopGuard<'_> {
    fn drop(&mut self) {
        self.0.store(true, Ordering::Release);
    }
}

/// Query-only per-client script: read-only requests commute, so every
/// interleaving must produce replies byte-identical to the sequential
/// server's.
fn script(client_id: u32) -> Vec<String> {
    (0..6u32)
        .map(|i| {
            let u = (client_id * 53 + i * 17) % 300;
            format!(
                "query {u} top=6 seed={}",
                0xACE0 + u64::from(client_id * 100 + i)
            )
        })
        .collect()
}

#[test]
fn concurrent_clients_get_byte_identical_replies() {
    let dir = tmpdir("determinism");
    let g = test_graph();
    let host = EngineHost::open(&g, &dir, options()).unwrap();
    let (l, addr) = listener();
    let stop = AtomicBool::new(false);
    let opts = ConnOptions::default();

    let summary = std::thread::scope(|s| {
        let _stop_on_panic = StopGuard(&stop);
        let server = s.spawn(|| conn::serve_supervised(&host, l, &opts, &stop).unwrap());
        let clients: Vec<_> = (0..4u32)
            .map(|id| {
                let addr = addr.clone();
                s.spawn(move || {
                    let mut c = Client::connect(&addr);
                    script(id)
                        .iter()
                        .map(|line| c.request(line))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let got: Vec<Vec<String>> = clients.into_iter().map(|c| c.join().unwrap()).collect();
        stop.store(true, Ordering::Release);
        let summary = server.join().unwrap();

        // The sequential reference: the same script through the bare
        // protocol handler on the same host.
        for (id, replies) in got.iter().enumerate() {
            let expected: Vec<String> = script(id as u32)
                .iter()
                .map(|line| handle_line(&host, line).0)
                .collect();
            assert_eq!(replies, &expected, "client {id} diverged");
        }
        summary
    });
    assert_eq!(summary.connections, 4);
    assert_eq!(summary.overload_rejects, 0);
    host.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stalled_client_does_not_block_others() {
    let dir = tmpdir("stall");
    let g = test_graph();
    let host = EngineHost::open(&g, &dir, options()).unwrap();
    let (l, addr) = listener();
    let stop = AtomicBool::new(false);
    let opts = ConnOptions {
        max_clients: 8,
        ..ConnOptions::default()
    };

    std::thread::scope(|s| {
        let _stop_on_panic = StopGuard(&stop);
        let server = s.spawn(|| conn::serve_supervised(&host, l, &opts, &stop).unwrap());
        // The staller connects first and sends nothing.
        let staller = TcpStream::connect(&addr).unwrap();
        // Three active clients must finish promptly while the staller
        // holds its slot open.
        let start = Instant::now();
        for id in 0..3u32 {
            let mut c = Client::connect(&addr);
            for line in script(id) {
                let reply = c.request(&line);
                assert!(reply.starts_with("ok "), "{reply}");
            }
        }
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "active clients starved behind a stalled one: {:?}",
            start.elapsed()
        );
        drop(staller);
        stop.store(true, Ordering::Release);
        server.join().unwrap();
    });
    host.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn overload_is_shed_with_a_retryable_error() {
    let dir = tmpdir("overload");
    let g = test_graph();
    let host = EngineHost::open(&g, &dir, options()).unwrap();
    let (l, addr) = listener();
    let stop = AtomicBool::new(false);
    let opts = ConnOptions {
        max_clients: 2,
        ..ConnOptions::default()
    };

    std::thread::scope(|s| {
        let _stop_on_panic = StopGuard(&stop);
        let server = s.spawn(|| conn::serve_supervised(&host, l, &opts, &stop).unwrap());
        // Two clients occupy both slots (a request each proves they are
        // being served, not just queued in the accept backlog).
        let mut a = Client::connect(&addr);
        let mut b = Client::connect(&addr);
        assert!(a.request("health").starts_with("ok health=ok"));
        assert!(b.request("health").starts_with("ok health=ok"));
        // The third is shed with a retryable error and a clean close.
        let mut c = Client::connect(&addr);
        let shed = c.recv();
        assert!(
            shed.starts_with("err retryable overloaded"),
            "expected overload shed, got {shed:?}"
        );
        assert_eq!(c.drain_to_eof(), "", "shed connection must close");
        // Freeing a slot readmits.
        drop(a);
        std::thread::sleep(Duration::from_millis(300));
        let mut d = Client::connect(&addr);
        assert!(d.request("health").starts_with("ok health=ok"));
        drop(b);
        drop(d);
        stop.store(true, Ordering::Release);
        let summary = server.join().unwrap();
        assert!(summary.overload_rejects >= 1, "{summary:?}");
    });
    host.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn inflight_gate_sheds_queries_at_the_limit() {
    let dir = tmpdir("gate");
    let g = test_graph();
    let host = EngineHost::open(&g, &dir, options()).unwrap();
    let gate = InflightGate::new(1);

    // With the single permit held, a gated query is shed retryably.
    let permit = gate.try_acquire().expect("first permit");
    let (reply, _) = handle_line_gated(&host, "query 5 top=3 seed=7", Some(&gate));
    assert!(
        reply.starts_with("err retryable overloaded"),
        "expected gate shed, got {reply:?}"
    );
    assert_eq!(gate.shed(), 1);
    // Non-query verbs pass the gate untouched.
    let (reply, _) = handle_line_gated(&host, "health", Some(&gate));
    assert!(reply.starts_with("ok health=ok"), "{reply}");
    // Releasing the permit reopens the gate, and the reply is
    // byte-identical to the ungated path.
    drop(permit);
    let (gated, _) = handle_line_gated(&host, "query 5 top=3 seed=7", Some(&gate));
    let (ungated, _) = handle_line(&host, "query 5 top=3 seed=7");
    assert_eq!(gated, ungated);
    assert_eq!(gate.in_flight(), 0);
    host.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn oversized_line_is_fatal_and_closes_the_connection() {
    let dir = tmpdir("oversized");
    let g = test_graph();
    let host = EngineHost::open(&g, &dir, options()).unwrap();
    let (l, addr) = listener();
    let stop = AtomicBool::new(false);
    let opts = ConnOptions {
        max_line_bytes: 64,
        ..ConnOptions::default()
    };

    std::thread::scope(|s| {
        let _stop_on_panic = StopGuard(&stop);
        let server = s.spawn(|| conn::serve_supervised(&host, l, &opts, &stop).unwrap());
        let mut c = Client::connect(&addr);
        let huge = "query ".to_string() + &"9".repeat(200);
        writeln!(c.writer, "{huge}").unwrap();
        let reply = c.recv();
        assert!(
            reply.starts_with("err fatal parse line exceeds"),
            "expected oversized-frame error, got {reply:?}"
        );
        assert_eq!(c.drain_to_eof(), "", "oversized frame must close");
        stop.store(true, Ordering::Release);
        server.join().unwrap();
    });
    host.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn chaos_clients_never_corrupt_the_server() {
    let dir = tmpdir("chaos");
    let g = test_graph();
    let host = EngineHost::open(&g, &dir, options()).unwrap();
    let (l, addr) = listener();
    let stop = AtomicBool::new(false);
    let opts = ConnOptions {
        max_clients: 8,
        ..ConnOptions::default()
    };

    std::thread::scope(|s| {
        let _stop_on_panic = StopGuard(&stop);
        let server = s.spawn(|| conn::serve_supervised(&host, l, &opts, &stop).unwrap());
        // Three seeded chaos clients in parallel: garbage frames,
        // half-writes with stalls, mid-query disconnects.
        let reports: Vec<_> = [11u64, 23, 37]
            .into_iter()
            .map(|seed| {
                let addr = addr.clone();
                s.spawn(move || conn::ChaosClient::new(addr, seed).run(40, 300))
            })
            .collect();
        for r in reports {
            let report = r.join().unwrap();
            assert_eq!(report.actions, 40, "{report:?}");
        }
        // After the storm, a clean client still gets the exact
        // sequential replies and the host reports healthy.
        let mut c = Client::connect(&addr);
        for line in script(9) {
            let expected = handle_line(&host, &line).0;
            assert_eq!(c.request(&line), expected);
        }
        assert!(c.request("health").starts_with("ok health=ok"));
        stop.store(true, Ordering::Release);
        server.join().unwrap();
    });
    host.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
