//! Integration tests for the background integrity scrubber: injected
//! at-rest rot in checkpoints, cold WAL segments and paged-arena pages
//! is detected within a cycle and either healed (health stays `ok`, the
//! served bits never change) or declared unhealable (health degrades
//! with reason `scrub: …`, and recovers once the artifact does). The
//! degraded-mode *exit* path is also pinned here: a WAL broken under
//! fault injection heals behind its backoff with gap-free LSNs while
//! the scrubber keeps running.

use prsim_core::{HubCount, PrsimConfig, QueryParams};
use prsim_gen::{chung_lu_undirected, ChungLuConfig};
use prsim_graph::{DiGraph, EdgeUpdate};
use prsim_server::{
    EngineHost, FaultPlan, FaultyStorage, FsStorage, HostOptions, ServerError, ServerStats,
};
use std::fs::{self, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("prsim_scrub_test_{name}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn test_graph() -> DiGraph {
    chung_lu_undirected(ChungLuConfig::new(300, 6.0, 2.0, 42))
}

/// Host options with a fast scrub cycle and tiny segments (so update
/// streams rotate cold segments for the scrubber to walk).
fn options() -> HostOptions {
    let mut options = HostOptions::new(PrsimConfig {
        eps: 0.2,
        hubs: HubCount::Fixed(12),
        query: QueryParams::Practical { c_mult: 1.0 },
        walk_cache_budget: 32,
        build_threads: 2,
        ..Default::default()
    });
    options.segment_bytes = 512;
    options.scrub_interval = Some(Duration::from_millis(50));
    options
}

/// Deterministic update stream (mirrors the host tests').
fn batches(g: &DiGraph, count: usize) -> Vec<Vec<EdgeUpdate>> {
    let edges: Vec<(u32, u32)> = g.edges().collect();
    let n = g.node_count() as u32;
    (0..count)
        .map(|i| {
            (0..3)
                .map(|j| {
                    let k = i * 3 + j;
                    if k % 2 == 0 {
                        let (u, v) = edges[(k * 7) % edges.len()];
                        EdgeUpdate::Delete(u, v)
                    } else {
                        EdgeUpdate::Insert((k as u32 * 13) % n, (k as u32 * 31 + 1) % n)
                    }
                })
                .collect()
        })
        .collect()
}

/// Exact top-k response text for a spread of sources.
fn fingerprint(host: &EngineHost) -> Vec<String> {
    let snap = host.snapshot();
    (0..10u32)
        .map(|i| {
            let u = i * 17 % snap.engine().graph().node_count() as u32;
            let (scores, _) = snap.query(u, 0xF00D ^ u64::from(u)).unwrap();
            let mut line = format!("{u}:");
            for (v, s) in scores.top_k(8) {
                line.push_str(&format!(" {v}:{s}"));
            }
            line
        })
        .collect()
}

/// XORs the byte at `offset` with 0xFF; returns the original value so
/// tests can un-rot the artifact later.
fn flip_byte(path: &Path, offset: u64) -> u8 {
    let mut f = OpenOptions::new()
        .read(true)
        .write(true)
        .open(path)
        .unwrap();
    f.seek(SeekFrom::Start(offset)).unwrap();
    let mut b = [0u8; 1];
    f.read_exact(&mut b).unwrap();
    f.seek(SeekFrom::Start(offset)).unwrap();
    f.write_all(&[b[0] ^ 0xFF]).unwrap();
    f.sync_data().unwrap();
    b[0]
}

fn put_byte(path: &Path, offset: u64, value: u8) {
    let mut f = OpenOptions::new().write(true).open(path).unwrap();
    f.seek(SeekFrom::Start(offset)).unwrap();
    f.write_all(&[value]).unwrap();
    f.sync_data().unwrap();
}

/// WAL-dir files with `prefix`, sorted by name (which sorts by seq/lsn).
fn artifacts(dir: &Path, prefix: &str) -> Vec<PathBuf> {
    let mut found: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .map(|n| n.to_string_lossy().starts_with(prefix))
                .unwrap_or(false)
        })
        .collect();
    found.sort();
    found
}

/// Polls `pred` against live stats until it holds or `timeout` expires.
fn wait_for(host: &EngineHost, timeout: Duration, pred: impl Fn(&ServerStats) -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    loop {
        if pred(&host.stats()) {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

const SCRUB_WAIT: Duration = Duration::from_secs(15);

#[test]
fn rotten_checkpoints_heal_without_changing_served_bits() {
    let dir = tmpdir("ckpt");
    let g = test_graph();
    let host = EngineHost::open(&g, &dir, options()).unwrap();
    let stream = batches(&g, 6);
    for batch in &stream[..3] {
        host.update(batch.clone()).unwrap();
    }
    host.sync().unwrap();
    host.checkpoint().unwrap();
    for batch in &stream[3..] {
        host.update(batch.clone()).unwrap();
    }
    host.sync().unwrap();
    host.checkpoint().unwrap();
    let before = fingerprint(&host);
    let ckpts = artifacts(&dir, "ckpt-");
    assert_eq!(ckpts.len(), 2, "GC keeps the newest-older fallback");

    // Rot the *older* (redundant) image: the heal is plain removal.
    flip_byte(&ckpts[0], fs::metadata(&ckpts[0]).unwrap().len() / 2);
    assert!(
        wait_for(&host, SCRUB_WAIT, |s| s.scrub_errors_healed >= 1),
        "scrub never healed the redundant checkpoint: {:?}",
        host.stats().render()
    );
    assert!(!ckpts[0].exists(), "rotten redundant image must be removed");

    // Rot the *newest* image: the heal is a refresh from the live
    // engine, overwriting it in place at the same LSN.
    let newest = artifacts(&dir, "ckpt-").pop().expect("newest survives");
    flip_byte(&newest, fs::metadata(&newest).unwrap().len() / 2);
    assert!(
        wait_for(&host, SCRUB_WAIT, |s| s.scrub_errors_healed >= 2),
        "scrub never refreshed the newest checkpoint: {:?}",
        host.stats().render()
    );

    assert!(!host.health().is_degraded(), "healed rot must not degrade");
    assert_eq!(fingerprint(&host), before, "served bits must not change");
    let stats = host.stats();
    assert!(stats.scrub_cycles >= 1 && stats.scrub_bytes_verified > 0);
    host.shutdown().unwrap();

    // The healed directory recovers cleanly from the refreshed image
    // (checkpoint recovery is a deterministic rebuild, not a bit copy
    // of the live engine, so state equality is asserted pre-shutdown
    // above and recovery is asserted structurally here).
    let host = EngineHost::open(&g, &dir, options()).unwrap();
    assert_eq!(host.recovery().checkpoint_lsn, Some(6));
    assert_eq!(host.stats().applied_lsn, 6);
    assert!(!host.health().is_degraded());
    host.shutdown().unwrap();
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn rotten_cold_segment_heals_via_recheckpoint() {
    let dir = tmpdir("coldseg");
    let g = test_graph();
    let host = EngineHost::open(&g, &dir, options()).unwrap();
    for batch in &batches(&g, 30) {
        host.update(batch.clone()).unwrap();
    }
    host.sync().unwrap();
    let before = fingerprint(&host);
    let segments = artifacts(&dir, "wal-");
    assert!(segments.len() >= 3, "stream must rotate segments");

    // Rot the first record's checksum in the coldest segment (byte 33:
    // past the 20-byte header, inside record 1's checksum field).
    flip_byte(&segments[0], 33);
    assert!(
        wait_for(&host, SCRUB_WAIT, |s| s.scrub_errors_healed >= 1),
        "scrub never healed the cold segment: {:?}",
        host.stats().render()
    );
    // The heal re-checkpoints, which makes every cold segment redundant
    // and collects the rotten one.
    assert!(!segments[0].exists(), "rotten cold segment must be gone");
    assert!(!host.health().is_degraded());
    assert_eq!(fingerprint(&host), before, "served bits must not change");
    host.shutdown().unwrap();

    // Recovery over the healed directory boots from the heal's
    // checkpoint with a gap-free LSN history — the removed segment's
    // records are all inside the image's horizon.
    let host = EngineHost::open(&g, &dir, options()).unwrap();
    assert_eq!(host.snapshot().last_lsn(), 30);
    assert_eq!(host.recovery().checkpoint_lsn, Some(30));
    assert!(!host.health().is_degraded());
    host.shutdown().unwrap();
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn rotten_live_tail_degrades_and_recovers_when_the_rot_does() {
    let dir = tmpdir("livetail");
    let g = test_graph();
    let mut opts = options();
    opts.segment_bytes = 1 << 20; // one live segment, never sealed
    let host = EngineHost::open(&g, &dir, opts).unwrap();
    for batch in &batches(&g, 3) {
        host.update(batch.clone()).unwrap();
    }
    host.sync().unwrap();

    // Rot record 1's checksum on the live tail: these records may be
    // the only copy of acked updates, so there is nothing to heal from.
    let live = artifacts(&dir, "wal-").pop().unwrap();
    let original = flip_byte(&live, 33);
    assert!(
        wait_for(&host, SCRUB_WAIT, |s| s.health.is_degraded()),
        "live-tail rot must degrade: {:?}",
        host.stats().render()
    );
    match host.health() {
        prsim_server::Health::Degraded { reason } => {
            assert!(reason.starts_with("scrub:"), "wrong reason: {reason}")
        }
        prsim_server::Health::Ok => unreachable!("checked degraded above"),
    }
    let stats = host.stats();
    assert!(stats.scrub_errors_found >= 1);
    // Queries keep serving the published epoch while degraded.
    fingerprint(&host);

    // The rot clears (an operator restored the sector): the next cycle
    // re-verifies clean and health returns to ok.
    put_byte(&live, 33, original);
    assert!(
        wait_for(&host, SCRUB_WAIT, |s| !s.health.is_degraded()),
        "health must recover once the artifact does: {:?}",
        host.stats().render()
    );
    host.shutdown().unwrap();
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn rotten_cold_arena_page_degrades_and_recovers() {
    let dir = tmpdir("arena");
    let g = test_graph();
    let mut opts = options();
    opts.config.plan = prsim_core::QueryPlan::Reference;
    opts.memory_budget = Some(1 << 20);
    opts.page_bytes = 64;
    opts.page_hot_ranks = 0; // nothing pinned: every page is cold
    let host = EngineHost::open(&g, &dir, opts).unwrap();

    // Rot the last page (the blob ends the file). No query has faulted
    // it in, so there is no resident copy to heal from.
    let arena = artifacts(&dir, "arena-").pop().expect("paged arena file");
    let offset = fs::metadata(&arena).unwrap().len() - 1;
    let original = flip_byte(&arena, offset);
    assert!(
        wait_for(&host, SCRUB_WAIT, |s| s.health.is_degraded()),
        "cold page rot must degrade: {:?}",
        host.stats().render()
    );
    match host.health() {
        prsim_server::Health::Degraded { reason } => assert!(
            reason.starts_with("scrub:") && reason.contains("no resident copy"),
            "wrong reason: {reason}"
        ),
        prsim_server::Health::Ok => unreachable!("checked degraded above"),
    }

    // Restore the byte: the page verifies clean again and health clears.
    put_byte(&arena, offset, original);
    assert!(
        wait_for(&host, SCRUB_WAIT, |s| !s.health.is_degraded()),
        "health must recover once the page does: {:?}",
        host.stats().render()
    );
    host.shutdown().unwrap();
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn broken_wal_exits_degraded_mode_with_gap_free_lsns() {
    let dir = tmpdir("walheal");
    let g = test_graph();
    let mut opts = options();
    opts.wal_retry_base = Duration::from_millis(1);
    let plan = FaultPlan {
        fsync_per_mille: 1000,    // every append fails...
        truncate_per_mille: 1000, // ...and so does its tail repair
        ..FaultPlan::none(7)
    };
    let faulty = Arc::new(FaultyStorage::new_disarmed(Arc::new(FsStorage), plan));
    let host = EngineHost::open_with_storage(&g, &dir, opts, faulty.clone()).unwrap();
    let stream = batches(&g, 3);
    host.update(stream[0].clone()).unwrap();

    faulty.set_armed(true);
    let err = host.update(stream[1].clone()).unwrap_err();
    assert!(matches!(err, ServerError::WalWrite(_)), "got {err}");
    assert!(host.health().is_degraded(), "broken WAL must degrade");

    // Storage comes back; the retried update lands behind the backoff
    // window and degraded mode exits — with the scrubber running the
    // whole time (its reads of the broken tail must not wedge it).
    faulty.set_armed(false);
    let deadline = Instant::now() + SCRUB_WAIT;
    loop {
        match host.update(stream[1].clone()) {
            Ok(lsn) => {
                assert_eq!(lsn, 2, "the failed attempt must not burn an LSN");
                break;
            }
            Err(e) => {
                assert!(e.retryable(), "heal-path errors must stay retryable: {e}");
                assert!(Instant::now() < deadline, "WAL never healed");
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
    assert!(
        wait_for(&host, SCRUB_WAIT, |s| !s.health.is_degraded()),
        "WAL heal must clear degraded mode: {:?}",
        host.stats().render()
    );
    host.update(stream[2].clone()).unwrap();
    let (applied, _) = host.sync().unwrap();
    assert_eq!(applied, 3, "LSN history must be gap-free after healing");
    let stats = host.stats();
    assert_eq!(stats.durable_lsn, 3);
    assert!(!stats.health.is_degraded());
    host.shutdown().unwrap();

    // Recovery agrees: exactly the three acked batches, no gaps.
    let host = EngineHost::open(&g, &dir, options()).unwrap();
    assert_eq!(host.snapshot().last_lsn(), 3);
    assert!(!host.health().is_degraded());
    host.shutdown().unwrap();
    fs::remove_dir_all(&dir).ok();
}
