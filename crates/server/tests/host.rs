//! Integration tests for [`EngineHost`]: recovery equivalence (a
//! restarted host serves bit-identical scores to the host it replaced),
//! epoch snapshot semantics, and checkpoint determinism.

use prsim_core::{HubCount, PrsimConfig, QueryParams};
use prsim_gen::{chung_lu_undirected, ChungLuConfig};
use prsim_graph::{DiGraph, EdgeUpdate};
use prsim_server::{EngineHost, HostOptions};
use std::fs;
use std::path::PathBuf;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("prsim_host_test_{name}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn test_graph() -> DiGraph {
    chung_lu_undirected(ChungLuConfig::new(300, 6.0, 2.0, 42))
}

fn options() -> HostOptions {
    HostOptions {
        config: PrsimConfig {
            eps: 0.2,
            hubs: HubCount::Fixed(12),
            query: QueryParams::Practical { c_mult: 1.0 },
            walk_cache_budget: 32,
            build_threads: 2,
            ..Default::default()
        },
        segment_bytes: 512, // tiny: every test exercises rotation
    }
}

/// Deterministic update stream: alternating deletes of live edges and
/// inserts of fresh ones, batched in threes.
fn batches(g: &DiGraph, count: usize) -> Vec<Vec<EdgeUpdate>> {
    let edges: Vec<(u32, u32)> = g.edges().collect();
    let n = g.node_count() as u32;
    (0..count)
        .map(|i| {
            (0..3)
                .map(|j| {
                    let k = i * 3 + j;
                    if k % 2 == 0 {
                        let (u, v) = edges[(k * 7) % edges.len()];
                        EdgeUpdate::Delete(u, v)
                    } else {
                        EdgeUpdate::Insert((k as u32 * 13) % n, (k as u32 * 31 + 1) % n)
                    }
                })
                .collect()
        })
        .collect()
}

/// Fingerprints the served state: exact top-k response text for a spread
/// of sources (the same rendering the protocol uses, so equality here is
/// the protocol-level bit-identical guarantee).
fn fingerprint(host: &EngineHost) -> Vec<String> {
    let snap = host.snapshot();
    (0..10u32)
        .map(|i| {
            let u = i * 17 % snap.engine().graph().node_count() as u32;
            let (scores, _) = snap.query(u, 0xF00D ^ u64::from(u)).unwrap();
            let mut line = format!("{u}:");
            for (v, s) in scores.top_k(8) {
                line.push_str(&format!(" {v}:{s}"));
            }
            line
        })
        .collect()
}

#[test]
fn restart_replays_to_bit_identical_state() {
    let dir = tmpdir("restart");
    let g = test_graph();
    let stream = batches(&g, 8);

    let before = {
        let host = EngineHost::open(&g, &dir, options()).unwrap();
        for batch in &stream {
            host.update(batch.clone()).unwrap();
        }
        let (applied, _) = host.sync().unwrap();
        assert_eq!(applied, stream.len() as u64);
        let f = fingerprint(&host);
        host.shutdown().unwrap();
        f
    };

    // Restart over the same WAL directory: replay must rebuild the exact
    // pre-shutdown state.
    let host = EngineHost::open(&g, &dir, options()).unwrap();
    let recovery = host.recovery();
    assert_eq!(recovery.checkpoint_lsn, None);
    assert_eq!(recovery.replayed_records, stream.len());
    assert_eq!(recovery.replayed_updates, stream.len() * 3);
    assert_eq!(host.snapshot().last_lsn(), stream.len() as u64);
    assert_eq!(
        fingerprint(&host),
        before,
        "recovered state must be bit-identical"
    );
    host.shutdown().unwrap();
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn recovery_matches_uninterrupted_application() {
    // Reference: a host that applies the stream live, never restarting.
    let g = test_graph();
    let stream = batches(&g, 6);
    let dir_live = tmpdir("live");
    let live = EngineHost::open(&g, &dir_live, options()).unwrap();
    for batch in &stream {
        live.update(batch.clone()).unwrap();
    }
    live.sync().unwrap();
    let expected = fingerprint(&live);
    live.shutdown().unwrap();

    // Candidate: same stream, but restarted after every single batch —
    // recovery composes with itself at arbitrary cut points.
    let dir_chopped = tmpdir("chopped");
    for batch in &stream {
        let host = EngineHost::open(&g, &dir_chopped, options()).unwrap();
        host.update(batch.clone()).unwrap();
        host.sync().unwrap();
        host.shutdown().unwrap();
    }
    let host = EngineHost::open(&g, &dir_chopped, options()).unwrap();
    assert_eq!(
        fingerprint(&host),
        expected,
        "N restarts must serve the same bytes as zero restarts"
    );
    host.shutdown().unwrap();
    fs::remove_dir_all(&dir_live).ok();
    fs::remove_dir_all(&dir_chopped).ok();
}

#[test]
fn epochs_advance_and_old_snapshots_stay_queryable() {
    let dir = tmpdir("epochs");
    let g = test_graph();
    let host = EngineHost::open(&g, &dir, options()).unwrap();
    let boot = host.snapshot();
    assert_eq!(boot.epoch(), 1);
    assert_eq!(boot.last_lsn(), 0);

    let stream = batches(&g, 4);
    for batch in &stream {
        host.update(batch.clone()).unwrap();
    }
    let (applied, epoch) = host.sync().unwrap();
    assert_eq!(applied, 4);
    assert!(epoch >= 2, "applying batches must publish new epochs");

    let current = host.snapshot();
    assert!(current.epoch() > boot.epoch());
    assert_eq!(current.last_lsn(), 4);
    // The pre-update snapshot is immutable and still answers queries
    // even though newer epochs have been published over it.
    let (scores, _) = boot.query(5, 99).unwrap();
    assert_eq!(scores.get(5), 1.0);

    let stats = host.stats();
    assert_eq!(stats.applied_lsn, 4);
    assert_eq!(stats.durable_lsn, 4);
    assert_eq!(stats.queue_depth, 0);
    assert!(stats.totals.applied_updates + stats.totals.noop_updates == 12);
    host.shutdown().unwrap();
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_recovery_is_deterministic_and_gcs_the_log() {
    let dir = tmpdir("checkpoint");
    let g = test_graph();
    let stream = batches(&g, 6);
    {
        let host = EngineHost::open(&g, &dir, options()).unwrap();
        for batch in &stream[..4] {
            host.update(batch.clone()).unwrap();
        }
        let info = host.checkpoint().unwrap();
        assert_eq!(info.lsn, 4, "checkpoint covers every queued batch");
        assert!(info.bytes > 0);
        for batch in &stream[4..] {
            host.update(batch.clone()).unwrap();
        }
        host.sync().unwrap();
        host.shutdown().unwrap();
    }

    // Two independent recoveries from the same (checkpoint, WAL suffix)
    // must agree bit-for-bit — the checkpoint is a deterministic rebuild
    // point even though it re-selects hubs.
    let fp1 = {
        let host = EngineHost::open(&g, &dir, options()).unwrap();
        let recovery = host.recovery();
        assert_eq!(recovery.checkpoint_lsn, Some(4));
        assert_eq!(recovery.replayed_records, 2, "only the suffix replays");
        let f = fingerprint(&host);
        host.shutdown().unwrap();
        f
    };
    let host = EngineHost::open(&g, &dir, options()).unwrap();
    assert_eq!(fingerprint(&host), fp1, "recovery must be deterministic");
    assert_eq!(host.stats().applied_lsn, 6);
    host.shutdown().unwrap();
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn empty_batches_and_noop_updates_are_durable_noops() {
    let dir = tmpdir("noop");
    let g = test_graph();
    let host = EngineHost::open(&g, &dir, options()).unwrap();
    let lsn = host.update(vec![]).unwrap();
    assert_eq!(lsn, 1);
    // A duplicate insert is a no-op for the graph but still consumes an
    // LSN — recovery must count it identically.
    let (u, v) = g.edges().next().unwrap();
    host.update(vec![EdgeUpdate::Insert(u, v)]).unwrap();
    let (applied, _) = host.sync().unwrap();
    assert_eq!(applied, 2);
    let edges_before = host.snapshot().engine().graph().edge_count();
    host.shutdown().unwrap();

    let host = EngineHost::open(&g, &dir, options()).unwrap();
    assert_eq!(host.snapshot().last_lsn(), 2);
    assert_eq!(host.snapshot().engine().graph().edge_count(), edges_before);
    host.shutdown().unwrap();
    fs::remove_dir_all(&dir).ok();
}
