//! Integration tests for [`EngineHost`]: recovery equivalence (a
//! restarted host serves bit-identical scores to the host it replaced),
//! epoch snapshot semantics, and checkpoint determinism.

use prsim_core::{HubCount, PrsimConfig, QueryParams};
use prsim_gen::{chung_lu_undirected, ChungLuConfig};
use prsim_graph::{DiGraph, EdgeUpdate};
use prsim_server::{EngineHost, FaultPlan, FaultyStorage, FsStorage, HostOptions, ServerError};
use std::fs;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("prsim_host_test_{name}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn test_graph() -> DiGraph {
    chung_lu_undirected(ChungLuConfig::new(300, 6.0, 2.0, 42))
}

fn options() -> HostOptions {
    let mut options = HostOptions::new(PrsimConfig {
        eps: 0.2,
        hubs: HubCount::Fixed(12),
        query: QueryParams::Practical { c_mult: 1.0 },
        walk_cache_budget: 32,
        build_threads: 2,
        ..Default::default()
    });
    options.segment_bytes = 512; // tiny: every test exercises rotation
    options
}

/// Deterministic update stream: alternating deletes of live edges and
/// inserts of fresh ones, batched in threes.
fn batches(g: &DiGraph, count: usize) -> Vec<Vec<EdgeUpdate>> {
    let edges: Vec<(u32, u32)> = g.edges().collect();
    let n = g.node_count() as u32;
    (0..count)
        .map(|i| {
            (0..3)
                .map(|j| {
                    let k = i * 3 + j;
                    if k % 2 == 0 {
                        let (u, v) = edges[(k * 7) % edges.len()];
                        EdgeUpdate::Delete(u, v)
                    } else {
                        EdgeUpdate::Insert((k as u32 * 13) % n, (k as u32 * 31 + 1) % n)
                    }
                })
                .collect()
        })
        .collect()
}

/// Fingerprints the served state: exact top-k response text for a spread
/// of sources (the same rendering the protocol uses, so equality here is
/// the protocol-level bit-identical guarantee).
fn fingerprint(host: &EngineHost) -> Vec<String> {
    let snap = host.snapshot();
    (0..10u32)
        .map(|i| {
            let u = i * 17 % snap.engine().graph().node_count() as u32;
            let (scores, _) = snap.query(u, 0xF00D ^ u64::from(u)).unwrap();
            let mut line = format!("{u}:");
            for (v, s) in scores.top_k(8) {
                line.push_str(&format!(" {v}:{s}"));
            }
            line
        })
        .collect()
}

#[test]
fn restart_replays_to_bit_identical_state() {
    let dir = tmpdir("restart");
    let g = test_graph();
    let stream = batches(&g, 8);

    let before = {
        let host = EngineHost::open(&g, &dir, options()).unwrap();
        for batch in &stream {
            host.update(batch.clone()).unwrap();
        }
        let (applied, _) = host.sync().unwrap();
        assert_eq!(applied, stream.len() as u64);
        let f = fingerprint(&host);
        host.shutdown().unwrap();
        f
    };

    // Restart over the same WAL directory: replay must rebuild the exact
    // pre-shutdown state.
    let host = EngineHost::open(&g, &dir, options()).unwrap();
    let recovery = host.recovery();
    assert_eq!(recovery.checkpoint_lsn, None);
    assert_eq!(recovery.replayed_records, stream.len());
    assert_eq!(recovery.replayed_updates, stream.len() * 3);
    assert_eq!(host.snapshot().last_lsn(), stream.len() as u64);
    assert_eq!(
        fingerprint(&host),
        before,
        "recovered state must be bit-identical"
    );
    host.shutdown().unwrap();
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn recovery_matches_uninterrupted_application() {
    // Reference: a host that applies the stream live, never restarting.
    let g = test_graph();
    let stream = batches(&g, 6);
    let dir_live = tmpdir("live");
    let live = EngineHost::open(&g, &dir_live, options()).unwrap();
    for batch in &stream {
        live.update(batch.clone()).unwrap();
    }
    live.sync().unwrap();
    let expected = fingerprint(&live);
    live.shutdown().unwrap();

    // Candidate: same stream, but restarted after every single batch —
    // recovery composes with itself at arbitrary cut points.
    let dir_chopped = tmpdir("chopped");
    for batch in &stream {
        let host = EngineHost::open(&g, &dir_chopped, options()).unwrap();
        host.update(batch.clone()).unwrap();
        host.sync().unwrap();
        host.shutdown().unwrap();
    }
    let host = EngineHost::open(&g, &dir_chopped, options()).unwrap();
    assert_eq!(
        fingerprint(&host),
        expected,
        "N restarts must serve the same bytes as zero restarts"
    );
    host.shutdown().unwrap();
    fs::remove_dir_all(&dir_live).ok();
    fs::remove_dir_all(&dir_chopped).ok();
}

#[test]
fn epochs_advance_and_old_snapshots_stay_queryable() {
    let dir = tmpdir("epochs");
    let g = test_graph();
    let host = EngineHost::open(&g, &dir, options()).unwrap();
    let boot = host.snapshot();
    assert_eq!(boot.epoch(), 1);
    assert_eq!(boot.last_lsn(), 0);

    let stream = batches(&g, 4);
    for batch in &stream {
        host.update(batch.clone()).unwrap();
    }
    let (applied, epoch) = host.sync().unwrap();
    assert_eq!(applied, 4);
    assert!(epoch >= 2, "applying batches must publish new epochs");

    let current = host.snapshot();
    assert!(current.epoch() > boot.epoch());
    assert_eq!(current.last_lsn(), 4);
    // The pre-update snapshot is immutable and still answers queries
    // even though newer epochs have been published over it.
    let (scores, _) = boot.query(5, 99).unwrap();
    assert_eq!(scores.get(5), 1.0);

    let stats = host.stats();
    assert_eq!(stats.applied_lsn, 4);
    assert_eq!(stats.durable_lsn, 4);
    assert_eq!(stats.queue_depth, 0);
    assert!(stats.totals.applied_updates + stats.totals.noop_updates == 12);
    host.shutdown().unwrap();
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_recovery_is_deterministic_and_gcs_the_log() {
    let dir = tmpdir("checkpoint");
    let g = test_graph();
    let stream = batches(&g, 6);
    {
        let host = EngineHost::open(&g, &dir, options()).unwrap();
        for batch in &stream[..4] {
            host.update(batch.clone()).unwrap();
        }
        let info = host.checkpoint().unwrap();
        assert_eq!(info.lsn, 4, "checkpoint covers every queued batch");
        assert!(info.bytes > 0);
        for batch in &stream[4..] {
            host.update(batch.clone()).unwrap();
        }
        host.sync().unwrap();
        host.shutdown().unwrap();
    }

    // Two independent recoveries from the same (checkpoint, WAL suffix)
    // must agree bit-for-bit — the checkpoint is a deterministic rebuild
    // point even though it re-selects hubs.
    let fp1 = {
        let host = EngineHost::open(&g, &dir, options()).unwrap();
        let recovery = host.recovery();
        assert_eq!(recovery.checkpoint_lsn, Some(4));
        assert_eq!(recovery.replayed_records, 2, "only the suffix replays");
        let f = fingerprint(&host);
        host.shutdown().unwrap();
        f
    };
    let host = EngineHost::open(&g, &dir, options()).unwrap();
    assert_eq!(fingerprint(&host), fp1, "recovery must be deterministic");
    assert_eq!(host.stats().applied_lsn, 6);
    host.shutdown().unwrap();
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn empty_batches_and_noop_updates_are_durable_noops() {
    let dir = tmpdir("noop");
    let g = test_graph();
    let host = EngineHost::open(&g, &dir, options()).unwrap();
    let lsn = host.update(vec![]).unwrap();
    assert_eq!(lsn, 1);
    // A duplicate insert is a no-op for the graph but still consumes an
    // LSN — recovery must count it identically.
    let (u, v) = g.edges().next().unwrap();
    host.update(vec![EdgeUpdate::Insert(u, v)]).unwrap();
    let (applied, _) = host.sync().unwrap();
    assert_eq!(applied, 2);
    let edges_before = host.snapshot().engine().graph().edge_count();
    host.shutdown().unwrap();

    let host = EngineHost::open(&g, &dir, options()).unwrap();
    assert_eq!(host.snapshot().last_lsn(), 2);
    assert_eq!(host.snapshot().engine().graph().edge_count(), edges_before);
    host.shutdown().unwrap();
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn full_queue_returns_retryable_busy_then_recovers() {
    let dir = tmpdir("busy");
    let g = test_graph();
    let mut opts = options();
    // One batch inflight at a time, held there long enough for the
    // second update to exhaust its (short) busy budget.
    opts.queue_depth = 1;
    opts.applier_delay = Duration::from_millis(400);
    opts.busy_timeout = Duration::from_millis(50);
    let host = EngineHost::open(&g, &dir, opts).unwrap();

    let stream = batches(&g, 2);
    host.update(stream[0].clone()).unwrap();
    let err = host.update(stream[1].clone()).unwrap_err();
    match &err {
        ServerError::Busy { waited_ms } => assert!(*waited_ms >= 50, "waited {waited_ms} ms"),
        other => panic!("want Busy, got {other}"),
    }
    assert!(err.retryable(), "Busy must be retryable");

    // Overload is not an outage: reads keep working and the same update
    // succeeds once the applier drains.
    let (scores, _) = host.snapshot().query(1, 7).unwrap();
    assert_eq!(scores.get(1), 1.0);
    host.sync().unwrap();
    host.update(stream[1].clone()).unwrap();
    let (applied, _) = host.sync().unwrap();
    assert_eq!(applied, 2, "retry consumes the next LSN, nothing is lost");

    let stats = host.stats();
    assert_eq!(stats.busy_rejects, 1);
    assert!(stats.max_queue_depth >= 1);
    assert!(stats.max_queue_bytes > 0);
    assert!(!stats.health.is_degraded());
    host.shutdown().unwrap();
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn byte_bound_admits_oversized_batch_only_when_queue_is_empty() {
    let dir = tmpdir("bytebound");
    let g = test_graph();
    let mut opts = options();
    opts.queue_bytes = 1; // every real batch is oversized
    opts.applier_delay = Duration::from_millis(400);
    opts.busy_timeout = Duration::from_millis(50);
    let host = EngineHost::open(&g, &dir, opts).unwrap();

    let stream = batches(&g, 2);
    // Empty-queue exception: an oversized batch is never unacceptable.
    host.update(stream[0].clone()).unwrap();
    // But it fills the byte budget, so the next one must wait its turn.
    let err = host.update(stream[1].clone()).unwrap_err();
    assert!(matches!(err, ServerError::Busy { .. }), "got {err}");
    host.sync().unwrap();
    host.update(stream[1].clone()).unwrap();
    host.sync().unwrap();
    assert_eq!(host.stats().busy_rejects, 1);
    host.shutdown().unwrap();
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn applier_panic_degrades_to_read_only_service() {
    let dir = tmpdir("panic");
    let g = test_graph();
    let mut opts = options();
    opts.applier_panic_at_lsn = Some(2);
    let host = EngineHost::open(&g, &dir, opts).unwrap();

    let stream = batches(&g, 3);
    host.update(stream[0].clone()).unwrap();
    host.sync().unwrap();
    let before = fingerprint(&host);

    // LSN 2 is durable (acked) but its application panics.
    host.update(stream[1].clone()).unwrap();
    let err = host.sync().unwrap_err();
    assert!(matches!(err, ServerError::ApplierDead(_)), "got {err}");

    // Degraded, not dead: health says so, reads still serve the last
    // published epoch, writes fail fatally.
    assert!(host.health().is_degraded());
    let stats = host.stats();
    assert!(stats.health.is_degraded());
    assert_eq!(stats.applied_lsn, 1, "the panicked batch never published");
    assert_eq!(
        fingerprint(&host),
        before,
        "read path must keep serving the pre-panic epoch"
    );
    let err = host.update(stream[2].clone()).unwrap_err();
    assert!(
        !err.retryable(),
        "writes to a dead applier are fatal: {err}"
    );
    host.shutdown().unwrap();

    // The acked-but-unapplied batch is on the log: a restart (without
    // the chaos hook) applies it — durability survived the panic.
    let host = EngineHost::open(&g, &dir, options()).unwrap();
    assert_eq!(host.snapshot().last_lsn(), 2);
    assert!(!host.health().is_degraded());
    host.shutdown().unwrap();
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn broken_wal_heals_with_backoff() {
    let dir = tmpdir("heal");
    let g = test_graph();
    let mut opts = options();
    opts.wal_retry_base = Duration::from_millis(1);
    let plan = FaultPlan {
        fsync_per_mille: 1000,    // every append fails...
        truncate_per_mille: 1000, // ...and so does its tail repair
        ..FaultPlan::none(7)
    };
    let faulty = Arc::new(FaultyStorage::new_disarmed(Arc::new(FsStorage), plan));
    let host = EngineHost::open_with_storage(&g, &dir, opts, faulty.clone()).unwrap();

    let stream = batches(&g, 2);
    faulty.set_armed(true);
    let err = host.update(stream[0].clone()).unwrap_err();
    assert!(matches!(err, ServerError::WalWrite(_)), "got {err}");
    assert!(err.retryable(), "a healing WAL is worth retrying");
    assert!(host.health().is_degraded());

    // Storage comes back; the host repairs the log behind its backoff
    // window and accepts the retried update on a fresh LSN.
    faulty.set_armed(false);
    std::thread::sleep(Duration::from_millis(20));
    host.update(stream[0].clone()).unwrap();
    let (applied, _) = host.sync().unwrap();
    assert_eq!(applied, 1);
    assert!(!host.health().is_degraded(), "healed host reports ok");
    assert!(host.stats().wal.failed_appends >= 1);
    host.shutdown().unwrap();

    // The failed attempt left no half-record behind: recovery sees
    // exactly the acked update.
    let host = EngineHost::open(&g, &dir, options()).unwrap();
    assert_eq!(host.snapshot().last_lsn(), 1);
    host.shutdown().unwrap();
    fs::remove_dir_all(&dir).ok();
}

/// Host options for out-of-core serving. The plan is pinned to
/// Reference on both sides of every comparison below: `Auto` resolves
/// differently for resident (fused) and paged (reference) arenas, and
/// the two plans agree only to ~1e-12, not bit-for-bit.
fn paged_options(budget: u64) -> HostOptions {
    let mut opts = options();
    opts.config.plan = prsim_core::QueryPlan::Reference;
    opts.memory_budget = Some(budget);
    opts.page_bytes = 64;
    opts.page_hot_ranks = 2;
    opts
}

const PAGED_BUDGET: u64 = 1 << 20;

#[test]
fn paged_host_serves_bit_identical_to_resident() {
    let g = test_graph();
    let stream = batches(&g, 8);

    let dir_resident = tmpdir("paged_ref_resident");
    let mut resident_opts = options();
    resident_opts.config.plan = prsim_core::QueryPlan::Reference;
    let resident = EngineHost::open(&g, &dir_resident, resident_opts).unwrap();

    let dir_paged = tmpdir("paged_ref_paged");
    let paged = EngineHost::open(&g, &dir_paged, paged_options(PAGED_BUDGET)).unwrap();
    let p = paged.stats().paging.expect("paged host reports pool stats");
    assert!(p.pages > 1, "arena must actually be paged");
    assert!(p.resident_bytes <= PAGED_BUDGET);

    assert_eq!(
        fingerprint(&paged),
        fingerprint(&resident),
        "paged boot state must serve bit-identically"
    );

    // Updates repair into the paged arena's overlay; serving stays
    // paged and stays bit-identical to the resident host.
    for batch in &stream {
        resident.update(batch.clone()).unwrap();
        paged.update(batch.clone()).unwrap();
    }
    resident.sync().unwrap();
    paged.sync().unwrap();
    assert_eq!(fingerprint(&paged), fingerprint(&resident));
    assert!(
        paged.stats().paging.is_some(),
        "updates must not un-page the arena"
    );
    assert!(!paged.health().is_degraded());

    let peak = paged.stats().paging.unwrap().peak_resident_bytes;
    assert!(
        peak <= PAGED_BUDGET,
        "peak {peak} exceeds budget {PAGED_BUDGET}"
    );

    resident.shutdown().unwrap();
    paged.shutdown().unwrap();
    fs::remove_dir_all(&dir_resident).ok();
    fs::remove_dir_all(&dir_paged).ok();
}

#[test]
fn paged_host_checkpoints_and_recovers_bit_identically() {
    let g = test_graph();
    let stream = batches(&g, 6);
    let dir = tmpdir("paged_ckpt");

    {
        let host = EngineHost::open(&g, &dir, paged_options(PAGED_BUDGET)).unwrap();
        for batch in &stream[..4] {
            host.update(batch.clone()).unwrap();
        }
        host.sync().unwrap();
        // The checkpoint image streams the arena back through the
        // buffer pool (try_to_bytes) — it must cover the paged base
        // plus the repair overlay.
        let info = host.checkpoint().unwrap();
        assert_eq!(info.lsn, 4);
        for batch in &stream[4..] {
            host.update(batch.clone()).unwrap();
        }
        host.sync().unwrap();
        host.shutdown().unwrap();
    }

    // Recovery rebuilds from the checkpoint graph and replays the WAL
    // suffix; the contract (same as the resident host) is that this is
    // deterministic, and that paging does not change the recovered
    // state: a paged recovery serves bit-identically to a resident
    // recovery of the same (checkpoint, WAL suffix).
    let paged_fp = {
        let host = EngineHost::open(&g, &dir, paged_options(PAGED_BUDGET)).unwrap();
        assert_eq!(host.recovery().checkpoint_lsn, Some(4));
        assert_eq!(host.recovery().replayed_records, 2);
        assert!(host.stats().paging.is_some());
        let peak = host.stats().paging.unwrap().peak_resident_bytes;
        assert!(
            peak <= PAGED_BUDGET,
            "peak {peak} exceeds budget {PAGED_BUDGET}"
        );
        let f = fingerprint(&host);
        host.shutdown().unwrap();
        f
    };
    let resident_fp = {
        let mut opts = options();
        opts.config.plan = prsim_core::QueryPlan::Reference;
        let host = EngineHost::open(&g, &dir, opts).unwrap();
        assert!(host.stats().paging.is_none());
        let f = fingerprint(&host);
        host.shutdown().unwrap();
        f
    };
    assert_eq!(paged_fp, resident_fp, "paging must not change recovery");

    // Re-open paged once more: recovery is deterministic, and exactly
    // one arena generation file remains (stale generations from the
    // previous paged incarnations are cleaned at boot).
    let host = EngineHost::open(&g, &dir, paged_options(PAGED_BUDGET)).unwrap();
    assert_eq!(
        fingerprint(&host),
        paged_fp,
        "paged recovery must be deterministic"
    );
    let arenas: Vec<_> = fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("arena-") && n.ends_with(".pages"))
        .collect();
    assert_eq!(
        arenas.len(),
        1,
        "stale arena generations must be cleaned: {arenas:?}"
    );
    host.shutdown().unwrap();
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn paged_host_rejects_infeasible_budget() {
    let g = test_graph();
    let dir = tmpdir("paged_tiny");
    let err = EngineHost::open(&g, &dir, paged_options(128)).unwrap_err();
    assert!(
        matches!(
            err,
            ServerError::Engine(prsim_core::PrsimError::InvalidConfig(_))
        ),
        "got {err}"
    );
    fs::remove_dir_all(&dir).ok();
}
