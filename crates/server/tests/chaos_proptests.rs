//! Chaos property tests: the durability pipeline driven through
//! seed-scheduled fault injection ([`prsim_server::FaultyStorage`]).
//!
//! The invariant under *any* fault schedule, at both the WAL and the
//! host level: **no acked update is ever lost, no unacked update is
//! ever half-applied** — replay after chaos yields exactly the acked
//! prefix, bit for bit. Fault schedules are pure functions of their
//! seed, so shrunk failures replay exactly.

use proptest::prelude::*;
use prsim_core::{HubCount, PrsimConfig, QueryParams};
use prsim_gen::{chung_lu_undirected, ChungLuConfig};
use prsim_graph::{DiGraph, EdgeUpdate};
use prsim_server::wal::{self, Wal};
use prsim_server::{EngineHost, FaultPlan, FaultyStorage, FsStorage, HostOptions};
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn tmpdir() -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "prsim_chaos_prop_{}_{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn arb_update() -> impl Strategy<Value = EdgeUpdate> {
    (0u8..2, 0u32..1_000, 0u32..1_000).prop_map(|(op, u, v)| {
        if op == 0 {
            EdgeUpdate::Insert(u, v)
        } else {
            EdgeUpdate::Delete(u, v)
        }
    })
}

fn arb_batches() -> impl Strategy<Value = Vec<Vec<EdgeUpdate>>> {
    proptest::collection::vec(proptest::collection::vec(arb_update(), 0..6), 1..16)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Appending through an armed fault schedule (fsync failures, torn
    /// writes, disk-full, create failures — repair surface reliable),
    /// then replaying on clean storage, recovers *exactly* the acked
    /// batches: contiguous LSNs, identical contents, nothing extra.
    #[test]
    fn wal_chaos_replays_exactly_the_acked_prefix(
        seed in 0u64..u64::MAX,
        batches in arb_batches(),
        seg in 64u64..2048,
    ) {
        let dir = tmpdir();
        let faulty = Arc::new(FaultyStorage::new_disarmed(
            Arc::new(FsStorage),
            FaultPlan::from_seed(seed),
        ));
        let (mut wal, outcome) =
            Wal::open_with_storage(faulty.clone(), &dir, seg, 0).unwrap();
        prop_assert!(outcome.records.is_empty());

        faulty.set_armed(true);
        let mut acked: Vec<Vec<EdgeUpdate>> = Vec::new();
        for batch in &batches {
            match wal.append(batch) {
                Ok(lsn) => {
                    // A failed append reissues its LSN: acks stay gap-free.
                    prop_assert_eq!(lsn, acked.len() as u64 + 1);
                    acked.push(batch.clone());
                }
                Err(_) => {
                    // The repair surface is reliable in this plan, so a
                    // failed append heals in place instead of breaking
                    // the log.
                    prop_assert!(wal.broken_reason().is_none());
                }
            }
        }
        faulty.set_armed(false);
        drop(wal);

        let (_, outcome) = Wal::open(&dir, seg, 0).unwrap();
        prop_assert_eq!(outcome.records.len(), acked.len(), "replay = acked prefix");
        for (i, record) in outcome.records.iter().enumerate() {
            prop_assert_eq!(record.lsn, i as u64 + 1);
            prop_assert_eq!(&record.updates, &acked[i]);
        }
        fs::remove_dir_all(&dir).ok();
    }

    /// Checkpoint publication is atomic under chaos: a checkpoint that
    /// reported success is durable and wins `latest_checkpoint`; failed
    /// attempts (torn tmp writes, failed renames) leave no visible
    /// image — the newest *successful* image is always what loads.
    #[test]
    fn checkpoint_chaos_publishes_atomically(
        seed in 0u64..u64::MAX,
        attempts in 1usize..6,
    ) {
        let dir = tmpdir();
        let g = DiGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let index_bytes = prsim_core::PrsimIndex::empty(5).to_bytes();
        let faulty = Arc::new(FaultyStorage::new_disarmed(
            Arc::new(FsStorage),
            FaultPlan::from_seed(seed),
        ));
        let (mut wal, _) =
            Wal::open_with_storage(faulty.clone(), &dir, 1 << 20, 0).unwrap();
        for lsn in 0..attempts as u64 {
            wal.append(&[EdgeUpdate::Insert(lsn as u32 % 5, (lsn as u32 + 1) % 5)]).unwrap();
        }

        faulty.set_armed(true);
        let mut last_ok: Option<u64> = None;
        for lsn in 1..=attempts as u64 {
            if wal.write_checkpoint(lsn, &g, &index_bytes).is_ok() {
                last_ok = Some(lsn);
            }
        }
        faulty.set_armed(false);
        drop(wal);

        let found = wal::latest_checkpoint(&dir).unwrap();
        match last_ok {
            Some(lsn) => {
                let ckpt = found.expect("successful checkpoint must be loadable");
                prop_assert_eq!(ckpt.lsn, lsn, "newest successful image wins");
                prop_assert_eq!(ckpt.graph.node_count(), 5);
            }
            None => prop_assert!(found.is_none(), "no success, no visible image"),
        }
        fs::remove_dir_all(&dir).ok();
    }
}

// ---- host-level chaos ------------------------------------------------

fn host_options() -> HostOptions {
    let mut options = HostOptions::new(PrsimConfig {
        eps: 0.3,
        hubs: HubCount::Fixed(8),
        query: QueryParams::Practical { c_mult: 1.0 },
        walk_cache_budget: 16,
        build_threads: 1,
        ..Default::default()
    });
    options.segment_bytes = 512; // rotation under fire
    options
}

fn host_graph() -> DiGraph {
    chung_lu_undirected(ChungLuConfig::new(80, 4.0, 2.0, 11))
}

/// Deterministic update stream over the host graph (mirrors the
/// integration tests' shape: deletes of live edges + fresh inserts).
fn host_batches(g: &DiGraph, count: usize) -> Vec<Vec<EdgeUpdate>> {
    let edges: Vec<(u32, u32)> = g.edges().collect();
    let n = g.node_count() as u32;
    (0..count)
        .map(|i| {
            (0..2)
                .map(|j| {
                    let k = i * 2 + j;
                    if k % 2 == 0 {
                        let (u, v) = edges[(k * 7) % edges.len()];
                        EdgeUpdate::Delete(u, v)
                    } else {
                        EdgeUpdate::Insert((k as u32 * 13) % n, (k as u32 * 31 + 1) % n)
                    }
                })
                .collect()
        })
        .collect()
}

/// Protocol-grade fingerprint: exact top-k response text for a spread
/// of sources.
fn fingerprint(host: &EngineHost) -> Vec<String> {
    let snap = host.snapshot();
    (0..4u32)
        .map(|i| {
            let u = i * 19 % snap.engine().graph().node_count() as u32;
            let (scores, _) = snap.query(u, 0xC0FFEE ^ u64::from(u)).unwrap();
            let mut line = format!("{u}:");
            for (v, s) in scores.top_k(6) {
                line.push_str(&format!(" {v}:{s}"));
            }
            line
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Interleaving injected fsync failures with live acks: the serving
    /// host only ever applies — and recovery only ever replays — the
    /// updates it acked. An errored `update` never surfaces, a restart
    /// over the chaos-era WAL matches a reference host that was handed
    /// exactly the acked batches, bit for bit.
    #[test]
    fn host_acked_prefix_survives_fsync_chaos(seed in 0u64..u64::MAX, nbatches in 4usize..10) {
        let g = host_graph();
        let stream = host_batches(&g, nbatches);
        let plan = FaultPlan {
            fsync_per_mille: 350,
            ..FaultPlan::none(seed)
        };

        let chaos_dir = tmpdir();
        let faulty = Arc::new(FaultyStorage::new_disarmed(Arc::new(FsStorage), plan));
        let host =
            EngineHost::open_with_storage(&g, &chaos_dir, host_options(), faulty.clone())
                .unwrap();
        faulty.set_armed(true);
        let mut acked: Vec<Vec<EdgeUpdate>> = Vec::new();
        for batch in &stream {
            match host.update(batch.clone()) {
                Ok(lsn) => {
                    prop_assert_eq!(lsn, acked.len() as u64 + 1);
                    acked.push(batch.clone());
                }
                Err(e) => prop_assert!(e.retryable(), "fsync chaos is transient: {e}"),
            }
        }
        faulty.set_armed(false);
        let (applied, _) = host.sync().unwrap();
        prop_assert_eq!(applied, acked.len() as u64, "applier saw exactly the acks");
        let live_fp = fingerprint(&host);
        host.shutdown().unwrap();

        // Restart over the chaos-era log with clean storage.
        let host = EngineHost::open(&g, &chaos_dir, host_options()).unwrap();
        prop_assert_eq!(host.snapshot().last_lsn(), acked.len() as u64);
        prop_assert_eq!(&fingerprint(&host), &live_fp, "recovery = live state");
        host.shutdown().unwrap();

        // Reference host fed exactly the acked batches, no chaos.
        let ref_dir = tmpdir();
        let reference = EngineHost::open(&g, &ref_dir, host_options()).unwrap();
        for batch in &acked {
            reference.update(batch.clone()).unwrap();
        }
        reference.sync().unwrap();
        prop_assert_eq!(&fingerprint(&reference), &live_fp, "chaos host = acked-only host");
        reference.shutdown().unwrap();

        fs::remove_dir_all(&chaos_dir).ok();
        fs::remove_dir_all(&ref_dir).ok();
    }
}
