//! Protocol fuzz: arbitrary byte streams through the request handler
//! never panic and always produce a structured reply — garbage parses
//! to `err fatal parse …`, never to silence, a crash, or a wrong `ok`.
//!
//! Two layers are fuzzed. Raw byte lines go through the same lossy
//! UTF-8 decoding the TCP supervisor applies before [`handle_line`];
//! printable token soup goes through [`serve_stream`] end to end, so
//! the framing loop is exercised too. A deterministic case feeds a
//! 100 MB token through the parser to pin down the oversized-argument
//! path (the TCP path bounds lines far earlier via `max_line_bytes`).

use proptest::prelude::*;
use prsim_core::{HubCount, PrsimConfig, QueryParams};
use prsim_gen::{chung_lu_undirected, ChungLuConfig};
use prsim_server::protocol::{handle_line, serve_stream};
use prsim_server::{EngineHost, HostOptions};
use std::io::Cursor;
use std::sync::OnceLock;

/// One shared host for every fuzz case: building the engine dominates
/// the test otherwise, and the protocol layer under test is stateless
/// apart from the updates a lucky case might legitimately apply.
fn host() -> &'static EngineHost {
    static HOST: OnceLock<EngineHost> = OnceLock::new();
    HOST.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("prsim_fuzz_host_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let g = chung_lu_undirected(ChungLuConfig::new(120, 5.0, 2.0, 7));
        let options = HostOptions::new(PrsimConfig {
            eps: 0.25,
            hubs: HubCount::Fixed(8),
            query: QueryParams::Practical { c_mult: 1.0 },
            walk_cache_budget: 16,
            build_threads: 2,
            ..Default::default()
        });
        EngineHost::open(&g, &dir, options).unwrap()
    })
}

/// The supervisor's line decoding: lossy UTF-8, trailing `\r` stripped.
fn decode(bytes: &[u8]) -> String {
    let mut line = String::from_utf8_lossy(bytes).into_owned();
    if line.ends_with('\r') {
        line.pop();
    }
    line
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary bytes — NULs, invalid UTF-8, control characters —
    /// split on newlines and decoded the way the TCP path decodes them:
    /// every non-blank line must yield exactly one structured reply.
    #[test]
    fn arbitrary_bytes_never_panic_and_always_answer(
        raw in proptest::collection::vec((0u16..256).prop_map(|b| b as u8), 0..2048),
    ) {
        let host = host();
        for chunk in raw.split(|&b| b == b'\n') {
            let line = decode(chunk);
            let (reply, _) = handle_line(host, &line);
            if line.split_whitespace().next().is_none() {
                prop_assert!(reply.is_empty(), "blank line answered: {reply:?}");
            } else {
                prop_assert!(
                    reply.starts_with("ok") || reply.starts_with("err"),
                    "unstructured reply {reply:?} to {line:?}"
                );
            }
        }
    }

    /// Token soup through the full stream loop: pathological but
    /// newline-framed input produces one `ok`/`err` line per request
    /// until (at most) a lucky `shutdown` token ends the stream, and
    /// the loop itself returns cleanly.
    #[test]
    fn token_soup_through_serve_stream_stays_structured(
        lines in proptest::collection::vec(
            proptest::collection::vec(
                // Printable-ASCII tokens, 0–12 chars each.
                proptest::collection::vec((0x20u16..0x7F).prop_map(|b| b as u8), 0..12)
                    .prop_map(|bytes| String::from_utf8(bytes).expect("printable ASCII")),
                0..6,
            )
            .prop_map(|t| t.join(" ")),
            0..20,
        ),
    ) {
        let host = host();
        let input = lines.join("\n") + "\n";
        let mut out: Vec<u8> = Vec::new();
        let outcome = serve_stream(host, Cursor::new(input.into_bytes()), &mut out);
        prop_assert!(outcome.is_ok(), "stream loop failed: {outcome:?}");
        let rendered = String::from_utf8(out).expect("replies are UTF-8");
        let replies: Vec<&str> = rendered.lines().collect();
        let requests = lines.iter().filter(|l| !l.trim().is_empty()).count();
        prop_assert!(replies.len() <= requests, "more replies than requests");
        for reply in replies {
            prop_assert!(
                reply.starts_with("ok") || reply.starts_with("err"),
                "unstructured reply {reply:?}"
            );
        }
    }
}

/// A 100 MB argument token must come back as a parse error, not a
/// panic, an allocation blowup in the reply, or a stall.
#[test]
fn hundred_megabyte_token_is_a_parse_error() {
    let host = host();
    let line = format!("query {}", "9".repeat(100 * 1024 * 1024));
    let (reply, quit) = handle_line(host, &line);
    assert!(
        reply.starts_with("err fatal parse"),
        "expected parse error, got {:?}…",
        &reply[..reply.len().min(80)]
    );
    assert!(!quit, "a bad request must not end the session");
    assert!(reply.len() < 4096, "reply echoes the oversized input");
}
