//! The pooling protocol (paper §5.1, extending ProbeSim's idea).
//!
//! Exact single-source ground truth needs `O(n²)` space, so on large
//! graphs the paper instead: runs every algorithm under evaluation, pools
//! the union of their top-k answers, obtains ground-truth values *only
//! for pool members* via the high-precision Monte-Carlo oracle, and takes
//! the best `k` of the pool as the reference set `V_k`.

use prsim_baselines::SingleSourceSimRank;
use prsim_core::SimRankScores;
use prsim_graph::NodeId;
use rand::rngs::StdRng;

use crate::ground_truth::GroundTruth;

/// The pooled reference set for one query node.
#[derive(Clone, Debug)]
pub struct PoolResult {
    /// Query node.
    pub source: NodeId,
    /// Pool members with ground-truth values, descending, truncated to k.
    pub truth_top_k: Vec<(NodeId, f64)>,
    /// Total distinct pool members before truncation.
    pub pool_size: usize,
}

/// Builds the pooled ground-truth top-k for `source` from the given
/// algorithms' answers (also returns each algorithm's scores so callers
/// don't recompute them).
pub fn build_pool(
    algorithms: &[&dyn SingleSourceSimRank],
    source: NodeId,
    k: usize,
    truth: &GroundTruth,
    rng: &mut StdRng,
) -> (PoolResult, Vec<SimRankScores>) {
    let mut pool: Vec<NodeId> = Vec::new();
    let mut all_scores = Vec::with_capacity(algorithms.len());
    for algo in algorithms {
        let scores = algo.single_source(source, rng);
        pool.extend(scores.top_k(k).into_iter().map(|(v, _)| v));
        all_scores.push(scores);
    }
    pool.sort_unstable();
    pool.dedup();
    let pool_size = pool.len();

    let mut truth_entries: Vec<(NodeId, f64)> = pool
        .into_iter()
        .map(|v| (v, truth.pair(source, v)))
        .collect();
    truth_entries.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    truth_entries.truncate(k);

    (
        PoolResult {
            source,
            truth_top_k: truth_entries,
            pool_size,
        },
        all_scores,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use prsim_baselines::{MonteCarlo, MonteCarloConfig};
    use rand::SeedableRng;
    use std::sync::Arc;

    #[test]
    fn pool_contains_truthful_top_k() {
        let g = Arc::new(prsim_gen::chung_lu_undirected(
            prsim_gen::ChungLuConfig::new(60, 4.0, 2.0, 6),
        ));
        let truth = GroundTruth::exact(&g, 0.6);
        let mc = MonteCarlo::new(
            Arc::clone(&g),
            MonteCarloConfig {
                nr: 3_000,
                ..Default::default()
            },
        );
        let algos: Vec<&dyn SingleSourceSimRank> = vec![&mc];
        let mut rng = StdRng::seed_from_u64(2);
        let (pool, scores) = build_pool(&algos, 0, 10, &truth, &mut rng);
        assert_eq!(scores.len(), 1);
        assert!(pool.truth_top_k.len() <= 10);
        assert!(pool.pool_size >= pool.truth_top_k.len());
        // Descending truth values, no source node.
        assert!(pool.truth_top_k.windows(2).all(|w| w[0].1 >= w[1].1));
        assert!(pool.truth_top_k.iter().all(|&(v, _)| v != 0));
    }

    #[test]
    fn union_pool_from_two_algorithms() {
        let g = Arc::new(prsim_gen::toys::star_out(8));
        let truth = GroundTruth::exact(&g, 0.6);
        let a = MonteCarlo::new(
            Arc::clone(&g),
            MonteCarloConfig {
                nr: 500,
                ..Default::default()
            },
        );
        let b = MonteCarlo::new(
            Arc::clone(&g),
            MonteCarloConfig {
                nr: 200,
                ..Default::default()
            },
        );
        let algos: Vec<&dyn SingleSourceSimRank> = vec![&a, &b];
        let mut rng = StdRng::seed_from_u64(3);
        let (pool, _) = build_pool(&algos, 1, 4, &truth, &mut rng);
        // All leaves have truth 0.6 with respect to leaf 1.
        for &(v, s) in &pool.truth_top_k {
            assert!(v >= 2);
            assert!((s - 0.6).abs() < 1e-9);
        }
    }
}
