//! Ground-truth SimRank oracles.
//!
//! Two regimes, mirroring §5.1 of the paper:
//!
//! * graphs small enough for `O(n²)` memory get the **exact** power
//!   method;
//! * larger graphs use the **high-precision Monte Carlo** single-pair
//!   estimator (the paper runs it to error `1e-5` at 99.999% confidence),
//!   with per-pair caching so pooled evaluations never pay twice.

use parking_lot::Mutex;
use prsim_baselines::monte_carlo::single_pair_simrank;
use prsim_baselines::power_method::{power_method, PowerMethodResult};
use prsim_graph::{DiGraph, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::Arc;

/// A single-pair SimRank oracle.
///
/// (The `Sampled` variant is much larger than `Exact`, but oracles are
/// created once per experiment, so the size gap is irrelevant.)
#[allow(clippy::large_enum_variant)]
pub enum GroundTruth {
    /// Exact all-pairs matrix (power method).
    Exact(PowerMethodResult),
    /// Cached high-precision Monte Carlo.
    Sampled {
        /// The graph queried.
        graph: Arc<DiGraph>,
        /// Decay factor.
        c: f64,
        /// Walk pairs per estimate.
        nr: usize,
        /// Walk length cap.
        max_len: usize,
        /// Pair cache (interior mutability: the oracle is logically
        /// read-only).
        cache: Mutex<HashMap<(NodeId, NodeId), f64>>,
        /// RNG dedicated to the oracle, seeded for reproducibility.
        rng: Mutex<StdRng>,
    },
}

impl GroundTruth {
    /// Exact oracle via the power method (use for `n ≲ 2000`).
    pub fn exact(g: &DiGraph, c: f64) -> Self {
        GroundTruth::Exact(power_method(g, c, 1e-10, 200))
    }

    /// Monte-Carlo oracle with `nr` walk pairs per queried node pair.
    pub fn sampled(graph: Arc<DiGraph>, c: f64, nr: usize, seed: u64) -> Self {
        GroundTruth::Sampled {
            graph,
            c,
            nr,
            max_len: 64,
            cache: Mutex::new(HashMap::new()),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
        }
    }

    /// Ground-truth `s(u, v)`.
    pub fn pair(&self, u: NodeId, v: NodeId) -> f64 {
        match self {
            GroundTruth::Exact(pm) => pm.get(u, v),
            GroundTruth::Sampled {
                graph,
                c,
                nr,
                max_len,
                cache,
                rng,
            } => {
                let key = if u <= v { (u, v) } else { (v, u) };
                if let Some(&hit) = cache.lock().get(&key) {
                    return hit;
                }
                let est = {
                    let mut r = rng.lock();
                    single_pair_simrank(graph, *c, key.0, key.1, *nr, *max_len, &mut *r)
                };
                cache.lock().insert(key, est);
                est
            }
        }
    }

    /// Number of cached pairs (0 for the exact oracle).
    pub fn cached_pairs(&self) -> usize {
        match self {
            GroundTruth::Exact(_) => 0,
            GroundTruth::Sampled { cache, .. } => cache.lock().len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_oracle_matches_power_method() {
        let g = prsim_gen::toys::star_out(5);
        let truth = GroundTruth::exact(&g, 0.6);
        assert!((truth.pair(1, 2) - 0.6).abs() < 1e-9);
        assert_eq!(truth.pair(3, 3), 1.0);
    }

    #[test]
    fn sampled_oracle_close_to_exact_and_caches() {
        let g = Arc::new(prsim_gen::toys::star_out(5));
        let truth = GroundTruth::sampled(Arc::clone(&g), 0.6, 40_000, 7);
        let a = truth.pair(1, 2);
        assert!((a - 0.6).abs() < 0.02, "sampled pair {a}");
        assert_eq!(truth.cached_pairs(), 1);
        // Cache hit: identical value, symmetric key.
        let b = truth.pair(2, 1);
        assert_eq!(a, b);
        assert_eq!(truth.cached_pairs(), 1);
    }
}
