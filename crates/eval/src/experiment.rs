//! Sweep runner: evaluates one algorithm configuration over a set of
//! query nodes, producing the tradeoff points plotted in Figures 2–5.

use prsim_baselines::SingleSourceSimRank;
use prsim_graph::NodeId;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

use crate::ground_truth::GroundTruth;
use crate::metrics::{avg_error_at_k, precision_at_k};
use crate::pooling::build_pool;

/// Evaluation settings shared by one sweep.
#[derive(Clone, Copy, Debug)]
pub struct EvalSettings {
    /// Top-k size for pooling, `AvgError@k` and `Precision@k` (the paper
    /// uses k = 50).
    pub k: usize,
    /// RNG seed for query-time randomness.
    pub seed: u64,
}

impl Default for EvalSettings {
    fn default() -> Self {
        EvalSettings {
            k: 50,
            seed: 0x5EED,
        }
    }
}

/// Measured tradeoff point of one algorithm configuration.
#[derive(Clone, Debug, Serialize)]
pub struct AlgoEvaluation {
    /// Algorithm name.
    pub name: String,
    /// Free-form parameter description (e.g. "eps=0.05").
    pub params: String,
    /// Mean single-source query wall time (seconds).
    pub query_seconds: f64,
    /// Mean `AvgError@k` over the query set.
    pub avg_error_at_k: f64,
    /// Mean `Precision@k` over the query set.
    pub precision_at_k: f64,
    /// Index size in bytes (0 for index-free algorithms).
    pub index_bytes: usize,
    /// Preprocessing time in seconds (0 for index-free algorithms).
    pub preprocess_seconds: f64,
    /// Number of query nodes evaluated.
    pub queries: usize,
}

/// Evaluates `algo` on `queries`: per query, builds a pooled reference set
/// with the algorithm's own answers (callers wanting a shared pool across
/// algorithms should use [`build_pool`] directly) and averages the
/// metrics. Query time excludes pooling and ground-truth work.
pub fn evaluate_algorithm(
    algo: &dyn SingleSourceSimRank,
    params: impl Into<String>,
    preprocess_seconds: f64,
    queries: &[NodeId],
    truth: &GroundTruth,
    settings: EvalSettings,
) -> AlgoEvaluation {
    let mut rng = StdRng::seed_from_u64(settings.seed);
    let mut total_time = 0.0;
    let mut total_err = 0.0;
    let mut total_prec = 0.0;

    for &u in queries {
        // Timed query run.
        let start = std::time::Instant::now();
        let scores = algo.single_source(u, &mut rng);
        total_time += start.elapsed().as_secs_f64();

        // Untimed pooling run (reuses the scores just computed).
        let algos: Vec<&dyn SingleSourceSimRank> = vec![algo];
        let (pool, _) = build_pool(&algos, u, settings.k, truth, &mut rng);
        total_err += avg_error_at_k(&scores, &pool.truth_top_k);
        total_prec += precision_at_k(&scores, &pool.truth_top_k, settings.k);
    }

    let q = queries.len().max(1) as f64;
    AlgoEvaluation {
        name: algo.name().to_string(),
        params: params.into(),
        query_seconds: total_time / q,
        avg_error_at_k: total_err / q,
        precision_at_k: total_prec / q,
        index_bytes: algo.index_size_bytes(),
        preprocess_seconds,
        queries: queries.len(),
    }
}

/// Picks `count` deterministic query nodes spread over `0..n`.
pub fn pick_query_nodes(n: usize, count: usize, seed: u64) -> Vec<NodeId> {
    use rand::seq::SliceRandom;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut all: Vec<NodeId> = (0..n as NodeId).collect();
    all.shuffle(&mut rng);
    all.truncate(count.min(n));
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use prsim_baselines::{MonteCarlo, MonteCarloConfig};
    use std::sync::Arc;

    #[test]
    fn evaluation_reports_sane_numbers() {
        let g = Arc::new(prsim_gen::chung_lu_undirected(
            prsim_gen::ChungLuConfig::new(60, 4.0, 2.0, 6),
        ));
        let truth = GroundTruth::exact(&g, 0.6);
        let mc = MonteCarlo::new(
            Arc::clone(&g),
            MonteCarloConfig {
                nr: 2_000,
                ..Default::default()
            },
        );
        let queries = pick_query_nodes(60, 5, 1);
        let eval = evaluate_algorithm(
            &mc,
            "nr=2000",
            0.0,
            &queries,
            &truth,
            EvalSettings { k: 10, seed: 4 },
        );
        assert_eq!(eval.name, "MC");
        assert_eq!(eval.queries, 5);
        assert!(eval.query_seconds > 0.0);
        assert!(eval.avg_error_at_k < 0.05, "error {}", eval.avg_error_at_k);
        assert!(eval.precision_at_k > 0.5);
        assert_eq!(eval.index_bytes, 0);
    }

    #[test]
    fn query_nodes_deterministic_and_unique() {
        let a = pick_query_nodes(100, 10, 7);
        let b = pick_query_nodes(100, 10, 7);
        assert_eq!(a, b);
        let mut c = a.clone();
        c.sort_unstable();
        c.dedup();
        assert_eq!(c.len(), 10);
        assert!(pick_query_nodes(5, 10, 1).len() == 5);
    }
}
