//! Plain-text tables and CSV series for the figure/table binaries.

use std::fmt::Write as _;
use std::fs::File;
use std::io::Write as _;
use std::path::Path;

use crate::experiment::AlgoEvaluation;

/// Renders rows as an aligned plain-text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate().take(cols) {
            let _ = write!(out, "{:<width$}  ", cell, width = widths[i]);
        }
        out.push('\n');
    };
    fmt_row(
        &mut out,
        &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    );
    let total: usize = widths.iter().sum::<usize>() + 2 * cols;
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        fmt_row(&mut out, row);
    }
    out
}

/// Formats an [`AlgoEvaluation`] as a standard report row.
pub fn eval_row(e: &AlgoEvaluation) -> Vec<String> {
    vec![
        e.name.clone(),
        e.params.clone(),
        format!("{:.6}", e.query_seconds),
        format!("{:.6}", e.avg_error_at_k),
        format!("{:.3}", e.precision_at_k),
        human_bytes(e.index_bytes),
        format!("{:.3}", e.preprocess_seconds),
    ]
}

/// Standard headers matching [`eval_row`].
pub const EVAL_HEADERS: [&str; 7] = [
    "algorithm",
    "params",
    "query_s",
    "avg_err@k",
    "prec@k",
    "index",
    "preproc_s",
];

/// Human-readable byte size.
pub fn human_bytes(bytes: usize) -> String {
    const UNITS: [&str; 5] = ["B", "KB", "MB", "GB", "TB"];
    let mut val = bytes as f64;
    let mut unit = 0;
    while val >= 1024.0 && unit < UNITS.len() - 1 {
        val /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes}B")
    } else {
        format!("{val:.1}{}", UNITS[unit])
    }
}

/// Writes rows as CSV (no quoting — callers must keep cells comma-free).
pub fn write_csv<P: AsRef<Path>>(
    path: P,
    headers: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<()> {
    let mut f = File::create(path)?;
    writeln!(f, "{}", headers.join(","))?;
    for row in rows {
        writeln!(f, "{}", row.join(","))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["a", "long_header"],
            &[
                vec!["xx".into(), "1".into()],
                vec!["y".into(), "22222222222222".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a "));
        assert!(lines[1].starts_with('-'));
    }

    #[test]
    fn bytes_formatting() {
        assert_eq!(human_bytes(0), "0B");
        assert_eq!(human_bytes(512), "512B");
        assert_eq!(human_bytes(2048), "2.0KB");
        assert_eq!(human_bytes(3 * 1024 * 1024), "3.0MB");
    }

    #[test]
    fn csv_round_trip() {
        let dir = std::env::temp_dir().join("prsim_eval_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        write_csv(
            &path,
            &["x", "y"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "x,y\n1,2\n3,4\n");
    }
}
