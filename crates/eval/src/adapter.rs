//! Adapter exposing the PRSim engine through the shared baseline trait.

use prsim_baselines::SingleSourceSimRank;
use prsim_core::{Prsim, PrsimConfig, SimRankScores};
use prsim_graph::{DiGraph, NodeId};
use rand::rngs::StdRng;

/// PRSim wrapped as a [`SingleSourceSimRank`] implementation, carrying its
/// build (preprocessing) time for the Figure 5 harness.
pub struct PrsimAlgo {
    engine: Prsim,
    /// Wall-clock preprocessing time of [`Prsim::build`], in seconds.
    pub preprocess_seconds: f64,
}

impl PrsimAlgo {
    /// Builds a PRSim engine, timing the preprocessing.
    pub fn build(graph: DiGraph, config: PrsimConfig) -> Result<Self, prsim_core::PrsimError> {
        let start = std::time::Instant::now();
        let engine = Prsim::build(graph, config)?;
        let preprocess_seconds = start.elapsed().as_secs_f64();
        Ok(PrsimAlgo {
            engine,
            preprocess_seconds,
        })
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &Prsim {
        &self.engine
    }
}

impl SingleSourceSimRank for PrsimAlgo {
    fn name(&self) -> &'static str {
        "PRSim"
    }

    fn single_source(&self, u: NodeId, rng: &mut StdRng) -> SimRankScores {
        self.engine.single_source(u, rng)
    }

    fn index_size_bytes(&self) -> usize {
        self.engine.index().size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn adapter_round_trip() {
        let g = prsim_gen::chung_lu_undirected(prsim_gen::ChungLuConfig::new(100, 5.0, 2.0, 3));
        let algo = PrsimAlgo::build(g, PrsimConfig::default()).unwrap();
        assert_eq!(algo.name(), "PRSim");
        assert!(algo.preprocess_seconds > 0.0);
        assert!(algo.index_size_bytes() > 0);
        let mut rng = StdRng::seed_from_u64(1);
        let s = algo.single_source(0, &mut rng);
        assert_eq!(s.get(0), 1.0);
    }
}
