//! Estimator stability measurement.
//!
//! Randomized single-source algorithms return different score vectors per
//! run; this module quantifies that spread (per-node standard deviation
//! over repeated runs and worst-case run-to-run divergence), which is the
//! empirical counterpart of the paper's variance analysis (Lemma 3.5 /
//! Lemma 3.7) and backs the noise caveats in EXPERIMENTS.md.

use prsim_baselines::SingleSourceSimRank;
use prsim_graph::NodeId;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// Spread statistics of repeated single-source runs.
#[derive(Clone, Debug)]
pub struct StabilityReport {
    /// Query node.
    pub source: NodeId,
    /// Number of repetitions measured.
    pub runs: usize,
    /// Largest per-node standard deviation across runs.
    pub max_std: f64,
    /// Mean per-node standard deviation (over nodes touched by any run).
    pub mean_std: f64,
    /// Largest absolute difference between any two runs at any node.
    pub max_divergence: f64,
}

/// Runs `algo` on `source` `runs` times with distinct seeds and measures
/// the per-node spread of the estimates.
pub fn measure_stability(
    algo: &dyn SingleSourceSimRank,
    source: NodeId,
    runs: usize,
    base_seed: u64,
) -> StabilityReport {
    assert!(runs >= 2, "need at least two runs to measure spread");
    // Welford-style accumulation per node.
    let mut count: HashMap<NodeId, usize> = HashMap::new();
    let mut sum: HashMap<NodeId, f64> = HashMap::new();
    let mut sum_sq: HashMap<NodeId, f64> = HashMap::new();
    let mut min_v: HashMap<NodeId, f64> = HashMap::new();
    let mut max_v: HashMap<NodeId, f64> = HashMap::new();

    for run in 0..runs {
        let mut rng = StdRng::seed_from_u64(base_seed + run as u64);
        let scores = algo.single_source(source, &mut rng);
        for (v, s) in scores.iter() {
            *count.entry(v).or_insert(0) += 1;
            *sum.entry(v).or_insert(0.0) += s;
            *sum_sq.entry(v).or_insert(0.0) += s * s;
            let mn = min_v.entry(v).or_insert(s);
            *mn = mn.min(s);
            let mx = max_v.entry(v).or_insert(s);
            *mx = mx.max(s);
        }
    }

    let mut max_std: f64 = 0.0;
    let mut total_std = 0.0;
    let mut max_divergence: f64 = 0.0;
    let nodes = sum.len().max(1);
    for (&v, &s) in &sum {
        // Runs that never touched v contributed an implicit 0.
        let n = runs as f64;
        let mean = s / n;
        let var = (sum_sq[&v] / n - mean * mean).max(0.0);
        let std = var.sqrt();
        max_std = max_std.max(std);
        total_std += std;
        let lo = if count[&v] < runs { 0.0 } else { min_v[&v] };
        max_divergence = max_divergence.max(max_v[&v] - lo);
    }

    StabilityReport {
        source,
        runs,
        max_std,
        mean_std: total_std / nodes as f64,
        max_divergence,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PrsimAlgo;
    use prsim_core::{PrsimConfig, QueryParams};

    fn engine(dr: usize) -> PrsimAlgo {
        let g = prsim_gen::chung_lu_undirected(prsim_gen::ChungLuConfig::new(100, 5.0, 2.0, 44));
        PrsimAlgo::build(
            g,
            PrsimConfig {
                query: QueryParams::Explicit { dr, fr: 1 },
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn spread_shrinks_with_more_samples() {
        let coarse = measure_stability(&engine(200), 0, 6, 9);
        let fine = measure_stability(&engine(8_000), 0, 6, 9);
        assert!(coarse.max_std > 0.0);
        assert!(
            fine.max_std < coarse.max_std,
            "fine {:.4} vs coarse {:.4}",
            fine.max_std,
            coarse.max_std
        );
        assert!(fine.max_divergence <= coarse.max_divergence * 1.5 + 1e-9);
    }

    #[test]
    fn deterministic_sources_have_zero_spread() {
        // On a cycle every estimate is 0 or 1 (self) regardless of seed.
        let g = prsim_gen::toys::cycle(8);
        let algo = PrsimAlgo::build(g, PrsimConfig::default()).unwrap();
        let rep = measure_stability(&algo, 2, 4, 1);
        assert_eq!(rep.max_std, 0.0);
        assert_eq!(rep.max_divergence, 0.0);
        assert_eq!(rep.runs, 4);
    }

    #[test]
    #[should_panic(expected = "at least two runs")]
    fn rejects_single_run() {
        let algo = engine(100);
        let _ = measure_stability(&algo, 0, 1, 0);
    }
}
