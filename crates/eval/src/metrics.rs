//! Accuracy metrics: `AvgError@k` and `Precision@k` (paper §5.1).

use prsim_core::SimRankScores;
use prsim_graph::NodeId;

/// `AvgError@k`: mean absolute error of the algorithm's estimates over the
/// pooled ground-truth top-k set `V_k = [(v_i, s(u, v_i))]`.
pub fn avg_error_at_k(scores: &SimRankScores, truth_top_k: &[(NodeId, f64)]) -> f64 {
    if truth_top_k.is_empty() {
        return 0.0;
    }
    let total: f64 = truth_top_k
        .iter()
        .map(|&(v, s)| (scores.get(v) - s).abs())
        .sum();
    total / truth_top_k.len() as f64
}

/// `Precision@k`: fraction of the ground-truth top-k contained in the
/// algorithm's top-k.
pub fn precision_at_k(scores: &SimRankScores, truth_top_k: &[(NodeId, f64)], k: usize) -> f64 {
    if k == 0 || truth_top_k.is_empty() {
        return 1.0;
    }
    let algo_top: std::collections::HashSet<NodeId> =
        scores.top_k(k).into_iter().map(|(v, _)| v).collect();
    let hits = truth_top_k
        .iter()
        .take(k)
        .filter(|&&(v, _)| algo_top.contains(&v))
        .count();
    hits as f64 / k.min(truth_top_k.len()) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scores(pairs: &[(u32, f64)]) -> SimRankScores {
        let mut s = SimRankScores::new(0, 100);
        for &(v, x) in pairs {
            s.set(v, x);
        }
        s
    }

    #[test]
    fn avg_error_exact_match_is_zero() {
        let s = scores(&[(1, 0.5), (2, 0.25)]);
        let truth = vec![(1u32, 0.5), (2, 0.25)];
        assert_eq!(avg_error_at_k(&s, &truth), 0.0);
    }

    #[test]
    fn avg_error_counts_missing_nodes() {
        let s = scores(&[(1, 0.5)]);
        let truth = vec![(1u32, 0.5), (9, 0.3)];
        assert!((avg_error_at_k(&s, &truth) - 0.15).abs() < 1e-12);
    }

    #[test]
    fn precision_full_and_partial() {
        let s = scores(&[(1, 0.9), (2, 0.8), (3, 0.7), (4, 0.6)]);
        let truth = vec![(1u32, 0.95), (2, 0.85), (5, 0.75)];
        assert!((precision_at_k(&s, &truth, 3) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(precision_at_k(&s, &truth[..2], 2), 1.0);
    }

    #[test]
    fn precision_k_larger_than_truth() {
        let s = scores(&[(1, 0.9)]);
        let truth = vec![(1u32, 0.9)];
        assert_eq!(precision_at_k(&s, &truth, 5), 1.0);
    }

    #[test]
    fn degenerate_inputs() {
        let s = scores(&[]);
        assert_eq!(avg_error_at_k(&s, &[]), 0.0);
        assert_eq!(precision_at_k(&s, &[], 10), 1.0);
        assert_eq!(precision_at_k(&s, &[(1, 0.5)], 0), 1.0);
    }
}
