//! # prsim-eval
//!
//! Evaluation harness reproducing the PRSim paper's experimental
//! methodology (§5.1):
//!
//! * [`adapter`] — wraps the PRSim engine in the common
//!   [`prsim_baselines::SingleSourceSimRank`] trait.
//! * [`ground_truth`] — exact (power-method) or high-precision Monte-Carlo
//!   single-pair oracles.
//! * [`pooling`] — the pooling protocol for evaluating single-source
//!   accuracy on graphs too large for exact ground truth.
//! * [`metrics`] — `AvgError@k` and `Precision@k`.
//! * [`experiment`] — sweep runner measuring query time, accuracy, index
//!   size and preprocessing time per algorithm/parameter point.
//! * [`report`] — plain-text tables and CSV series for EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapter;
pub mod experiment;
pub mod ground_truth;
pub mod metrics;
pub mod pooling;
pub mod report;
pub mod stability;

pub use adapter::PrsimAlgo;
pub use experiment::{evaluate_algorithm, AlgoEvaluation, EvalSettings};
pub use ground_truth::GroundTruth;
pub use metrics::{avg_error_at_k, precision_at_k};
pub use pooling::{build_pool, PoolResult};
pub use stability::{measure_stability, StabilityReport};
