//! Minimal `--flag value` argument parsing (no external dependencies).

use std::collections::HashMap;

/// Parsed positional arguments and `--key value` options.
pub struct Args {
    pub positional: Vec<String>,
    options: HashMap<String, String>,
    #[allow(dead_code)]
    flags: Vec<String>,
}

impl Args {
    /// Splits `argv` into positionals, `--key value` options and bare
    /// `--flag`s (an option whose next token is another `--` token or
    /// missing counts as a flag).
    pub fn parse(argv: &[String]) -> Args {
        let mut positional = Vec::new();
        let mut options = HashMap::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let tok = &argv[i];
            if let Some(key) = tok.strip_prefix("--") {
                match argv.get(i + 1) {
                    Some(val) if !val.starts_with("--") => {
                        options.insert(key.to_string(), val.clone());
                        i += 2;
                    }
                    _ => {
                        flags.push(key.to_string());
                        i += 1;
                    }
                }
            } else {
                positional.push(tok.clone());
                i += 1;
            }
        }
        Args {
            positional,
            options,
            flags,
        }
    }

    /// Required string option.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.options
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required option --{key}"))
    }

    /// Optional string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Optional typed option with a default.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("invalid value {raw:?} for --{key}")),
        }
    }

    /// Required typed option.
    pub fn require_parsed<T: std::str::FromStr>(&self, key: &str) -> Result<T, String> {
        let raw = self.require(key)?;
        raw.parse()
            .map_err(|_| format!("invalid value {raw:?} for --{key}"))
    }

    /// Whether a bare `--flag` was present. (Not yet used by a shipped
    /// subcommand; exercised by tests and kept for option growth.)
    #[allow(dead_code)]
    pub fn has_flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Args {
        Args::parse(&v.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn positional_options_flags() {
        let a = args(&["file.txt", "--eps", "0.1", "--verbose", "--out", "x.bin"]);
        assert_eq!(a.positional, vec!["file.txt"]);
        assert_eq!(a.require("eps").unwrap(), "0.1");
        assert_eq!(a.get("out"), Some("x.bin"));
        assert!(a.has_flag("verbose"));
        assert!(!a.has_flag("quiet"));
    }

    #[test]
    fn typed_parsing() {
        let a = args(&["--n", "100", "--gamma", "2.5"]);
        assert_eq!(a.get_parsed("n", 0usize).unwrap(), 100);
        assert_eq!(a.require_parsed::<f64>("gamma").unwrap(), 2.5);
        assert_eq!(a.get_parsed("missing", 7u32).unwrap(), 7);
        assert!(a.get_parsed::<usize>("gamma", 0).is_err());
        assert!(a.require_parsed::<usize>("absent").is_err());
    }
}
