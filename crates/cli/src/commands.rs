//! Subcommand implementations.

use prsim_core::pagerank::reverse_pagerank;
use prsim_core::{
    DynamicParams, DynamicPrsim, HubCount, Prsim, PrsimConfig, PrsimIndex, QueryParams, UpdateMode,
};
use prsim_gen::{
    barabasi_albert, chung_lu_directed, chung_lu_undirected, erdos_renyi_directed,
    planted_partition, ChungLuConfig,
};
use prsim_graph::degrees::{degree_stats, powerlaw_exponent_ccdf_fit, DegreeKind};
use prsim_graph::io::{read_binary_file, read_edge_list_file};
use prsim_graph::DiGraph;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::Path;

use crate::args::Args;

/// Top-level usage text.
pub const USAGE: &str = "\
prsim — sublinear single-source SimRank (SIGMOD 2019 reproduction)

USAGE:
  prsim generate <chung-lu|chung-lu-directed|ba|er|sbm> [opts] --out FILE
      common: --seed N (default 42)
      chung-lu[-directed]: --n N --avg-degree D --gamma G [--gamma-in G2]
      ba:  --n N --m-attach M
      er:  --n N --avg-degree D
      sbm: --communities K --size S --p-in P --p-out Q
  prsim convert IN OUT              (.bin = binary, else edge-list text)
  prsim stats GRAPH
  prsim build GRAPH --index FILE [--eps E] [--hubs N|sqrt] [--f32-reserves]
      [--sorted-out FILE] [--paged-index FILE [--page-bytes N]]
      --f32-reserves stores index reserves quantized to f32 (arena ~2/3
      the size; quantization error is charged against eps)
      --paged-index additionally writes the arena as a page-checksummed
      v4 file servable out of core (see query --paged-index)
  prsim query GRAPH --source U [--index FILE] [--eps E] [--top K] [--seed N]
      [--walk-cache B] [--no-walk-cache]
      [--paged-index FILE [--memory-budget B] [--page-hot R]]
      --walk-cache B pre-samples walk terminals/η verdicts for the top-B
      reverse-PageRank nodes (default 256; answers stay honest per query
      but are correlated across queries); --no-walk-cache disables it
      --paged-index serves the arena out of core through a pin/unpin
      buffer pool capped at --memory-budget bytes (default 64 MiB), with
      the top --page-hot hub ranks pinned resident (default 64)
  prsim topk GRAPH --source U [--k K] [--eps E] [--seed N]
  prsim pair GRAPH --u A --v B [--samples N] [--seed N]
  prsim update GRAPH --stream FILE [--mode incremental|rebuild] [--batch K]
      [--eps E] [--hubs N|sqrt] [--drift-budget X] [--compact-threshold N]
      [--probe U] [--seed N] [--out FILE]
      replay an edge-update file (+/- u v per line) through the dynamic
      engine, reporting updates/sec and repair statistics
  prsim serve GRAPH --wal DIR [--listen ADDR] [--segment-bytes N]
      [--eps E] [--hubs N|sqrt] [--walk-cache B] [--no-walk-cache]
      [--queue-depth N] [--queue-bytes N] [--busy-timeout-ms N]
      [--max-clients N] [--max-inflight-queries N] [--max-line-bytes N]
      [--client-timeout-ms N] [--drain-timeout-ms N]
      [--scrub-interval-ms N | --no-scrub]
      [--fault-seed S] [--applier-delay-ms N]
      [--chaos-applier-panic-lsn L]
      [--memory-budget B [--page-bytes N] [--page-hot R]]
      --memory-budget B serves the postings arena out of core: the
      recovered index is demoted to a paged arena file in DIR behind a
      buffer pool hard-capped at B resident bytes; page faults degrade
      the affected queries (they fall back to live backward walks and
      report degraded=true) instead of crashing
      resident engine: queries over immutable epoch snapshots, updates
      through a durable fsync-on-commit WAL in DIR (replayed on restart).
      Speaks a line protocol (query/update/sync/stats/health/checkpoint/
      shutdown) on stdin/stdout, or on ADDR with --listen (prints
      `listening <addr>`). TCP serving is concurrent: up to --max-clients
      connections (excess shed with `err retryable overloaded`), at most
      --max-inflight-queries queries executing at once (excess shed the
      same way), --max-line-bytes per request line, --client-timeout-ms
      drops clients that stall. SIGTERM/SIGINT drains gracefully: stop
      accepting, finish in-flight work, final checkpoint, clean WAL
      close, exit 0 — all within --drain-timeout-ms (default 5000).
      A background scrubber re-verifies at-rest checksums every
      --scrub-interval-ms (default 1000; --no-scrub disables), healing
      rot where a redundant copy exists and degrading health otherwise.
      The applier queue is bounded (--queue-depth/--queue-bytes);
      updates past the bound block --busy-timeout-ms then fail
      `err retryable busy`. --fault-seed runs the WAL over deterministic
      fault injection; the remaining --chaos-* / --applier-delay-ms
      flags are test hooks (see README, Failure model)
";

fn load_graph(path: &str) -> Result<DiGraph, String> {
    let result = if path.ends_with(".bin") {
        read_binary_file(path)
    } else {
        read_edge_list_file(path)
    };
    result.map_err(|e| format!("cannot read graph {path}: {e}"))
}

fn save_graph(g: &DiGraph, path: &str) -> Result<(), String> {
    // Serialize by the FINAL path's extension, then write atomically: an
    // interrupted run leaves the old file intact, never a torn one.
    let bytes = if path.ends_with(".bin") {
        prsim_graph::io::to_binary(g).to_vec()
    } else {
        let mut buf = Vec::new();
        prsim_graph::io::write_edge_list(g, &mut buf)
            .map_err(|e| format!("cannot serialize graph for {path}: {e}"))?;
        buf
    };
    write_file_atomic(path, &bytes).map_err(|e| format!("cannot write graph {path}: {e}"))
}

/// Writes `bytes` to `path` via a same-directory temp file + fsync +
/// rename + parent-directory fsync, so readers only ever observe the
/// old or the complete new content and the rename itself survives a
/// power cut (the same discipline the server's WAL checkpoints use —
/// without the directory fsync, the kernel may persist the file data
/// but lose the directory entry, resurrecting the old file after a
/// crash).
fn write_file_atomic(path: &str, bytes: &[u8]) -> Result<(), String> {
    use std::io::Write;
    let tmp = format!("{path}.tmp.{}", std::process::id());
    let result = (|| -> std::io::Result<()> {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path)?;
        let parent = match Path::new(path).parent() {
            Some(p) if !p.as_os_str().is_empty() => p,
            _ => Path::new("."),
        };
        std::fs::File::open(parent)?.sync_all()?;
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result.map_err(|e| e.to_string())
}

/// `prsim generate` — synthesize a graph.
pub fn generate(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv);
    let model = args
        .positional
        .first()
        .ok_or("missing model (chung-lu | chung-lu-directed | ba | er | sbm)")?;
    let out = args.require("out")?;
    let seed: u64 = args.get_parsed("seed", 42)?;
    let g = match model.as_str() {
        "chung-lu" | "chung-lu-directed" => {
            let n: usize = args.require_parsed("n")?;
            let d: f64 = args.get_parsed("avg-degree", 10.0)?;
            let gamma: f64 = args.get_parsed("gamma", 2.0)?;
            let cfg = ChungLuConfig::new(n, d, gamma, seed);
            if model == "chung-lu" {
                chung_lu_undirected(cfg)
            } else {
                let gamma_in: f64 = args.get_parsed("gamma-in", gamma)?;
                chung_lu_directed(cfg, gamma_in, seed.wrapping_add(1))
            }
        }
        "ba" => {
            let n: usize = args.require_parsed("n")?;
            let m: usize = args.get_parsed("m-attach", 4)?;
            barabasi_albert(n, m, seed)
        }
        "er" => {
            let n: usize = args.require_parsed("n")?;
            let d: f64 = args.get_parsed("avg-degree", 10.0)?;
            erdos_renyi_directed(n, d / (n as f64 - 1.0).max(1.0), seed)
        }
        "sbm" => {
            let communities: usize = args.require_parsed("communities")?;
            let size: usize = args.require_parsed("size")?;
            let p_in: f64 = args.get_parsed("p-in", 0.2)?;
            let p_out: f64 = args.get_parsed("p-out", 0.01)?;
            planted_partition(communities, size, p_in, p_out, seed)
        }
        other => return Err(format!("unknown model {other:?}")),
    };
    save_graph(&g, out)?;
    println!(
        "wrote {} ({} nodes, {} edges)",
        out,
        g.node_count(),
        g.edge_count()
    );
    Ok(())
}

/// `prsim convert` — transcode between text and binary graph files.
pub fn convert(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv);
    let [input, output] = args.positional.as_slice() else {
        return Err("usage: prsim convert IN OUT".into());
    };
    let g = load_graph(input)?;
    save_graph(&g, output)?;
    println!(
        "converted {input} -> {output} ({} nodes, {} edges)",
        g.node_count(),
        g.edge_count()
    );
    Ok(())
}

/// `prsim stats` — size / degree / power-law report.
pub fn stats(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv);
    let path = args.positional.first().ok_or("usage: prsim stats GRAPH")?;
    let g = load_graph(path)?;
    let gs = prsim_graph::graph_stats(&g);
    println!("graph      : {path}");
    println!("nodes      : {}", gs.nodes);
    println!("edges      : {}", gs.edges);
    println!("avg degree : {:.3}", g.avg_degree());
    println!("density    : {:.3e}", gs.density);
    println!("reciprocity: {:.3}", gs.reciprocity);
    println!(
        "sources/sinks/isolated : {}/{}/{}",
        gs.sources, gs.sinks, gs.isolated
    );
    for (kind, label) in [(DegreeKind::Out, "out"), (DegreeKind::In, "in")] {
        let s = degree_stats(&g, kind);
        let degs = prsim_graph::degrees::degree_sequence(&g, kind);
        let gamma = powerlaw_exponent_ccdf_fit(&degs, 3)
            .map(|x| format!("{x:.2}"))
            .unwrap_or_else(|| "n/a".into());
        println!(
            "{label:>3}-degree : min {} max {} mean {:.2} zeros {} gamma(fit) {}",
            s.min, s.max, s.mean, s.zeros, gamma
        );
    }
    Ok(())
}

fn config_from(args: &Args) -> Result<PrsimConfig, String> {
    let eps: f64 = args.get_parsed("eps", 0.05)?;
    let hubs = match args.get("hubs") {
        None | Some("sqrt") => HubCount::SqrtN,
        Some(raw) => HubCount::Fixed(
            raw.parse()
                .map_err(|_| format!("invalid value {raw:?} for --hubs"))?,
        ),
    };
    let reserve_precision = if args.has_flag("f32-reserves") {
        prsim_core::ReservePrecision::F32
    } else {
        prsim_core::ReservePrecision::F64
    };
    let default_budget = PrsimConfig::default().walk_cache_budget;
    let walk_cache_budget = if args.has_flag("no-walk-cache") {
        if args.get("walk-cache").is_some() {
            return Err("--walk-cache and --no-walk-cache are mutually exclusive".into());
        }
        0
    } else {
        args.get_parsed("walk-cache", default_budget)?
    };
    Ok(PrsimConfig {
        eps,
        hubs,
        query: QueryParams::Practical { c_mult: 3.0 },
        reserve_precision,
        walk_cache_budget,
        ..Default::default()
    })
}

/// `prsim build` — preprocess a graph and persist the index (plus,
/// optionally, the counting-sorted graph the index is valid for).
pub fn build(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv);
    let path = args
        .positional
        .first()
        .ok_or("usage: prsim build GRAPH --index FILE")?;
    let index_path = args.require("index")?;
    let g = load_graph(path)?;
    let config = config_from(&args)?;
    let start = std::time::Instant::now();
    let engine = Prsim::build(g, config).map_err(|e| e.to_string())?;
    let elapsed = start.elapsed().as_secs_f64();
    write_file_atomic(index_path, &engine.index().to_bytes())
        .map_err(|e| format!("cannot write index {index_path}: {e}"))?;
    if let Some(paged_path) = args.get("paged-index") {
        let page_bytes: u32 =
            args.get_parsed("page-bytes", prsim_core::PagedOptions::default().page_bytes)?;
        engine
            .index()
            .write_paged(&prsim_server::FsStorage, Path::new(paged_path), page_bytes)
            .map_err(|e| format!("cannot write paged index {paged_path}: {e}"))?;
        println!("wrote paged index ({page_bytes}-byte pages) -> {paged_path}");
    }
    if let Some(sorted_out) = args.get("sorted-out") {
        save_graph(engine.graph(), sorted_out)?;
    }
    let precision = match engine.index().precision() {
        prsim_core::ReservePrecision::F64 => "f64",
        prsim_core::ReservePrecision::F32 => "f32",
    };
    println!(
        "built index in {elapsed:.3}s: {} hubs, {} entries ({precision}), {} bytes -> {index_path}",
        engine.index().hub_count(),
        engine.index().entry_count(),
        engine.index().size_bytes()
    );
    Ok(())
}

/// `prsim query` — single-source top-k.
pub fn query(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv);
    let path = args
        .positional
        .first()
        .ok_or("usage: prsim query GRAPH --source U")?;
    let source: u32 = args.require_parsed("source")?;
    let top: usize = args.get_parsed("top", 10)?;
    let seed: u64 = args.get_parsed("seed", 0)?;
    let repeat: usize = args.get_parsed("repeat", 1)?;
    if repeat == 0 {
        return Err("--repeat must be at least 1".into());
    }
    let config = config_from(&args)?;

    let mut g = load_graph(path)?;
    if args.get("index").is_some() && args.get("paged-index").is_some() {
        return Err("--index and --paged-index are mutually exclusive".into());
    }
    let engine = match (args.get("index"), args.get("paged-index")) {
        (Some(index_path), None) => {
            if !g.is_out_sorted_by_in_degree() {
                prsim_graph::ordering::sort_out_by_in_degree(&mut g);
            }
            let bytes = std::fs::read(index_path)
                .map_err(|e| format!("cannot read index {index_path}: {e}"))?;
            let index =
                PrsimIndex::from_bytes(&bytes, g.node_count()).map_err(|e| e.to_string())?;
            let pi = reverse_pagerank(&g, config.sqrt_c(), 1e-12, config.max_level);
            Prsim::from_parts(g, pi, index, config).map_err(|e| e.to_string())?
        }
        (None, Some(paged_path)) => {
            // Out-of-core serving: the arena stays in the page file
            // behind a buffer pool whose resident bytes never exceed
            // --memory-budget.
            if !g.is_out_sorted_by_in_degree() {
                prsim_graph::ordering::sort_out_by_in_degree(&mut g);
            }
            let defaults = prsim_core::PagedOptions::default();
            let opts = prsim_core::PagedOptions {
                page_bytes: defaults.page_bytes,
                memory_budget: args.get_parsed("memory-budget", defaults.memory_budget)?,
                hot_ranks: args.get_parsed("page-hot", defaults.hot_ranks)?,
            };
            let index = PrsimIndex::open_paged(
                std::sync::Arc::new(prsim_server::FsStorage),
                Path::new(paged_path),
                g.node_count(),
                &opts,
            )
            .map_err(|e| e.to_string())?;
            let pi = reverse_pagerank(&g, config.sqrt_c(), 1e-12, config.max_level);
            Prsim::from_parts(g, pi, index, config).map_err(|e| e.to_string())?
        }
        _ => Prsim::build(g, config).map_err(|e| e.to_string())?,
    };

    // One workspace reused across repeats: repeat > 1 measures the warm
    // steady-state latency a query server would see (results are
    // bit-identical to a fresh workspace either way).
    let mut ws = prsim_core::QueryWorkspace::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let start = std::time::Instant::now();
    let (scores, stats) = engine
        .try_single_source_with_workspace(source, &mut ws, &mut rng)
        .map_err(|e| e.to_string())?;
    let elapsed = start.elapsed().as_secs_f64();
    println!(
        "query node {source}: {:.4}s, {} walks ({} died, {} pair-met), {} backward walks",
        elapsed, stats.walks, stats.died, stats.pair_met, stats.backward_walks
    );
    if let Some(p) = engine.index().paging_stats() {
        println!(
            "paging: resident {} bytes (peak {}), {} hits / {} misses / {} evictions, \
             {} faults, {} fallbacks, degraded={}",
            p.resident_bytes,
            p.peak_resident_bytes,
            p.hits,
            p.misses,
            p.evictions,
            p.faults,
            stats.page_fallbacks,
            stats.degraded
        );
    }
    if repeat > 1 {
        let start = std::time::Instant::now();
        for i in 1..repeat {
            let mut rng = StdRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9E37_79B9));
            let _ = engine
                .try_single_source_with_workspace(source, &mut ws, &mut rng)
                .map_err(|e| e.to_string())?;
        }
        let warm = start.elapsed().as_secs_f64() / (repeat - 1) as f64;
        println!(
            "warm repeats: {:.0} us/query over {} runs",
            warm * 1e6,
            repeat - 1
        );
    }
    for (rank, (v, s)) in scores.top_k(top).into_iter().enumerate() {
        println!("{:>3}. {:>8}  {:.6}", rank + 1, v, s);
    }
    Ok(())
}

/// `prsim topk` — adaptive top-k query.
pub fn topk(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv);
    let path = args
        .positional
        .first()
        .ok_or("usage: prsim topk GRAPH --source U [--k K]")?;
    let source: u32 = args.require_parsed("source")?;
    let k: usize = args.get_parsed("k", 10)?;
    let seed: u64 = args.get_parsed("seed", 0)?;
    let config = config_from(&args)?;
    let g = load_graph(path)?;
    let engine = Prsim::build(g, config).map_err(|e| e.to_string())?;
    let mut rng = StdRng::seed_from_u64(seed);
    let start = std::time::Instant::now();
    let res = engine
        .top_k_adaptive(source, k, prsim_core::TopKParams::default(), &mut rng)
        .map_err(|e| e.to_string())?;
    println!(
        "top-{k} of node {source}: {:.4}s, {} samples, converged = {}",
        start.elapsed().as_secs_f64(),
        res.samples_used,
        res.converged
    );
    for (rank, (v, s)) in res.entries.into_iter().enumerate() {
        println!("{:>3}. {:>8}  {:.6}", rank + 1, v, s);
    }
    Ok(())
}

/// `prsim pair` — single-pair Monte-Carlo estimate via the engine.
pub fn pair(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv);
    let path = args
        .positional
        .first()
        .ok_or("usage: prsim pair GRAPH --u A --v B")?;
    let u: u32 = args.require_parsed("u")?;
    let v: u32 = args.require_parsed("v")?;
    let samples: usize = args.get_parsed("samples", 10_000)?;
    let seed: u64 = args.get_parsed("seed", 0)?;
    let g = load_graph(path)?;
    let config = PrsimConfig {
        hubs: HubCount::Fixed(0),
        query: QueryParams::Explicit { dr: samples, fr: 1 },
        ..Default::default()
    };
    let engine = Prsim::build(g, config).map_err(|e| e.to_string())?;
    let mut rng = StdRng::seed_from_u64(seed);
    let s = engine
        .single_pair(u, v, &mut rng)
        .map_err(|e| e.to_string())?;
    println!("s({u},{v}) ≈ {s:.6}  ({samples} walk pairs)");
    Ok(())
}

/// `prsim update` — replay an edge-update stream through the dynamic
/// engine.
pub fn update(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv);
    let path = args
        .positional
        .first()
        .ok_or("usage: prsim update GRAPH --stream FILE")?;
    let stream_path = args.require("stream")?;
    let seed: u64 = args.get_parsed("seed", 0)?;
    let config = config_from(&args)?;

    let mode = match args.get("mode").unwrap_or("incremental") {
        "incremental" => {
            if args.get("batch").is_some() {
                return Err("--batch only applies to --mode rebuild".into());
            }
            let defaults = DynamicParams::default();
            UpdateMode::Incremental(DynamicParams {
                drift_budget: args.get_parsed("drift-budget", defaults.drift_budget)?,
                compact_threshold: args
                    .get_parsed("compact-threshold", defaults.compact_threshold)?,
                ..defaults
            })
        }
        "rebuild" => {
            for flag in ["drift-budget", "compact-threshold"] {
                if args.get(flag).is_some() {
                    return Err(format!("--{flag} only applies to --mode incremental"));
                }
            }
            UpdateMode::RebuildOnBatch {
                batch: args.get_parsed("batch", 1)?,
            }
        }
        other => {
            return Err(format!(
                "unknown mode {other:?} (want incremental | rebuild)"
            ))
        }
    };

    let g = load_graph(path)?;
    let updates = prsim_graph::io::read_update_list_file(stream_path)
        .map_err(|e| format!("cannot read update stream {stream_path}: {e}"))?;
    if updates.is_empty() {
        return Err(format!("update stream {stream_path} contains no updates"));
    }

    let build_start = std::time::Instant::now();
    let mut engine = DynamicPrsim::new(&g, config, mode).map_err(|e| e.to_string())?;
    // Rebuild mode builds lazily; force the initial build here so the
    // replay timing (like incremental mode's) excludes it.
    if engine.engine().is_none() {
        engine.refresh().map_err(|e| e.to_string())?;
    }
    let build_secs = build_start.elapsed().as_secs_f64();
    let initial_rebuilds = engine.rebuilds();

    let mut repair_fraction_sum = 0.0;
    let mut applied_with_hubs = 0usize;
    let replay_start = std::time::Instant::now();
    for &up in &updates {
        let stats = engine.apply(up).map_err(|e| e.to_string())?;
        if stats.applied && stats.hub_count > 0 && !stats.rebuilt {
            repair_fraction_sum += stats.repair_fraction;
            applied_with_hubs += 1;
        }
        // Rebuild mode only rebuilds on queries by itself; refresh at
        // every batch boundary so --batch governs replay cost exactly as
        // the paper's amortized contract prescribes. (No-op when
        // incremental: that mode is never stale.)
        if engine.is_stale() {
            engine.refresh().map_err(|e| e.to_string())?;
        }
    }
    let replay_secs = replay_start.elapsed().as_secs_f64();

    let totals = engine.totals();
    println!("initial build  : {build_secs:.3}s");
    println!(
        "replayed       : {} updates ({} applied, {} no-ops) in {replay_secs:.3}s = {:.1} updates/s",
        updates.len(),
        totals.applied_updates,
        totals.noop_updates,
        updates.len() as f64 / replay_secs.max(1e-9),
    );
    println!(
        "graph          : {} nodes, {} edges",
        engine.node_count(),
        engine.edge_count()
    );
    println!(
        "maintenance    : {} hub repairs, {} rebuilds, {} compactions",
        totals.repaired_hubs,
        totals.rebuilds - initial_rebuilds,
        totals.compactions
    );
    if applied_with_hubs > 0 {
        println!(
            "repair fraction: {:.4} mean over {} incremental updates",
            repair_fraction_sum / applied_with_hubs as f64,
            applied_with_hubs
        );
    }

    if let Some(probe) = args.get("probe") {
        let u: u32 = probe
            .parse()
            .map_err(|_| format!("invalid value {probe:?} for --probe"))?;
        let top: usize = args.get_parsed("top", 10)?;
        // A rebuild-mode engine can hold a sub-batch remainder; fold it in
        // so the probe really answers over the fully updated graph.
        if engine.pending_updates() > 0 {
            engine.refresh().map_err(|e| e.to_string())?;
        }
        let start = std::time::Instant::now();
        let (scores, _) = engine
            .single_source(u, &mut StdRng::seed_from_u64(seed))
            .map_err(|e| e.to_string())?;
        println!(
            "probe node {u}  : {:.4}s (fresh against the updated graph)",
            start.elapsed().as_secs_f64()
        );
        for (rank, (v, s)) in scores.top_k(top).into_iter().enumerate() {
            println!("{:>3}. {:>8}  {:.6}", rank + 1, v, s);
        }
    }
    if let Some(out) = args.get("out") {
        // A rebuild-mode engine may still hold buffered updates short of
        // the batch; fold them in so the written graph is current.
        if engine.pending_updates() > 0 {
            engine.refresh().map_err(|e| e.to_string())?;
        }
        let final_graph = engine.engine().expect("engine built after replay").graph();
        save_graph(final_graph, out)?;
        println!("wrote updated graph -> {out}");
    }
    Ok(())
}

/// `prsim serve` — resident engine over a durable WAL, speaking the
/// line protocol on stdin/stdout or TCP.
pub fn serve(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv);
    let path = args
        .positional
        .first()
        .ok_or("usage: prsim serve GRAPH --wal DIR [--listen ADDR]")?;
    let wal_dir = args.require("wal")?;
    let config = config_from(&args)?;

    let mut options = prsim_server::HostOptions::new(config);
    options.segment_bytes = args.get_parsed("segment-bytes", options.segment_bytes)?;
    options.queue_depth = args.get_parsed("queue-depth", options.queue_depth)?;
    options.queue_bytes = args.get_parsed("queue-bytes", options.queue_bytes)?;
    options.busy_timeout = std::time::Duration::from_millis(
        args.get_parsed("busy-timeout-ms", options.busy_timeout.as_millis() as u64)?,
    );
    // Out-of-core serving: demote the recovered arena to a paged file
    // in the WAL directory under a hard resident-byte ceiling.
    options.memory_budget = match args.get("memory-budget") {
        Some(v) => Some(
            v.parse()
                .map_err(|_| format!("invalid value {v:?} for --memory-budget"))?,
        ),
        None => None,
    };
    options.page_bytes = args.get_parsed("page-bytes", options.page_bytes)?;
    options.page_hot_ranks = args.get_parsed("page-hot", options.page_hot_ranks)?;
    // Chaos hooks, exposed so the CI smoke/chaos jobs can exercise the
    // overload and supervision paths through the real binary.
    options.applier_delay =
        std::time::Duration::from_millis(args.get_parsed("applier-delay-ms", 0u64)?);
    options.applier_panic_at_lsn = match args.get("chaos-applier-panic-lsn") {
        Some(v) => Some(
            v.parse()
                .map_err(|_| format!("invalid value {v:?} for --chaos-applier-panic-lsn"))?,
        ),
        None => None,
    };
    if args.has_flag("no-scrub") && args.get("scrub-interval-ms").is_some() {
        return Err("--scrub-interval-ms and --no-scrub are mutually exclusive".into());
    }
    options.scrub_interval = if args.has_flag("no-scrub") {
        None
    } else {
        match args.get_parsed("scrub-interval-ms", 1000u64)? {
            0 => None,
            ms => Some(std::time::Duration::from_millis(ms)),
        }
    };
    let client_timeout = match args.get_parsed("client-timeout-ms", 0u64)? {
        0 => None,
        ms => Some(std::time::Duration::from_millis(ms)),
    };
    let conn_opts = prsim_server::ConnOptions {
        max_clients: args.get_parsed("max-clients", 64usize)?,
        max_inflight_queries: args.get_parsed("max-inflight-queries", 256usize)?,
        read_timeout: client_timeout,
        max_line_bytes: args.get_parsed("max-line-bytes", 1usize << 20)?,
        drain_timeout: std::time::Duration::from_millis(
            args.get_parsed("drain-timeout-ms", 5000u64)?,
        ),
    };

    let g = load_graph(path)?;
    let start = std::time::Instant::now();
    // --fault-seed runs the WAL on the deterministic fault-injecting
    // storage backend (armed only after recovery, so startup always
    // succeeds): the crash-under-chaos CI job drives this.
    let host = match args.get("fault-seed") {
        Some(v) => {
            let seed: u64 = v
                .parse()
                .map_err(|_| format!("invalid value {v:?} for --fault-seed"))?;
            let faulty = std::sync::Arc::new(prsim_server::FaultyStorage::new_disarmed(
                std::sync::Arc::new(prsim_server::FsStorage),
                prsim_server::FaultPlan::from_seed(seed),
            ));
            let host = prsim_server::EngineHost::open_with_storage(
                &g,
                Path::new(wal_dir),
                options,
                faulty.clone(),
            )
            .map_err(|e| e.to_string())?;
            faulty.set_armed(true);
            eprintln!("fault injection armed: seed={seed}");
            host
        }
        None => prsim_server::EngineHost::open(&g, Path::new(wal_dir), options)
            .map_err(|e| e.to_string())?,
    };
    let recovery = host.recovery();
    eprintln!(
        "serving in {:.3}s: {} nodes, {} edges; recovery: checkpoint={} replayed {} records \
         ({} updates), truncated {} bytes",
        start.elapsed().as_secs_f64(),
        host.snapshot().engine().graph().node_count(),
        host.snapshot().engine().graph().edge_count(),
        recovery
            .checkpoint_lsn
            .map(|l| l.to_string())
            .unwrap_or_else(|| "none".into()),
        recovery.replayed_records,
        recovery.replayed_updates,
        recovery.truncated_bytes,
    );
    match args.get("listen") {
        Some(addr) => {
            let listener = std::net::TcpListener::bind(addr)
                .map_err(|e| format!("cannot bind {addr}: {e}"))?;
            let local = listener
                .local_addr()
                .map_err(|e| format!("cannot resolve bound address: {e}"))?;
            // Scripts (and the CI crash test) parse this line to learn the
            // ephemeral port when ADDR ends in :0.
            println!("listening {local}");
            // SIGTERM/SIGINT flip the stop flag; the supervisor notices
            // within a poll tick and returns so the host can drain.
            let stop = prsim_server::signal::install_term_handler();
            let summary = prsim_server::conn::serve_supervised(&host, listener, &conn_opts, stop)
                .map_err(|e| e.to_string())?;
            eprintln!(
                "served {} connections ({} shed at --max-clients, {} queries shed at \
                 --max-inflight-queries)",
                summary.connections, summary.overload_rejects, summary.gate_shed
            );
            if summary.shutdown_requested {
                // The `shutdown` verb keeps its historical semantics: the
                // queue is already drained by the applier's own stop path.
                host.shutdown().map_err(|e| e.to_string())
            } else {
                // External signal: graceful drain — finish committed
                // work, final checkpoint, clean close, exit 0.
                let drained = host
                    .drain(conn_opts.drain_timeout)
                    .map_err(|e| e.to_string())?;
                match drained {
                    Some(info) => eprintln!(
                        "drained: final checkpoint lsn={} bytes={}",
                        info.lsn, info.bytes
                    ),
                    None => eprintln!("drained: no final checkpoint (timeout or degraded)"),
                }
                Ok(())
            }
        }
        None => prsim_server::protocol::serve_stdio(&host).map_err(|e| e.to_string()),
    }
}
