//! `prsim` — command-line interface for the PRSim SimRank suite.
//!
//! ```text
//! prsim generate <model> [options] --out FILE     synthesize a graph
//! prsim convert  IN OUT                           text <-> binary graph formats
//! prsim stats    GRAPH                            size / degree / exponent report
//! prsim build    GRAPH --index FILE [options]     preprocess: build + save index
//! prsim query    GRAPH --source U [options]       single-source top-k query
//! prsim pair     GRAPH --u A --v B [options]      single-pair estimate
//! prsim update   GRAPH --stream FILE [options]    replay an edge-update stream
//! prsim serve    GRAPH --wal DIR [options]        resident engine over a durable WAL
//! ```
//!
//! Graph files ending in `.bin` use the compact binary format; anything
//! else is whitespace edge-list text.

use std::process::ExitCode;

mod args;
mod commands;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        eprintln!("{}", commands::USAGE);
        return ExitCode::from(2);
    };
    let result = match cmd.as_str() {
        "generate" => commands::generate(rest),
        "convert" => commands::convert(rest),
        "stats" => commands::stats(rest),
        "build" => commands::build(rest),
        "query" => commands::query(rest),
        "topk" => commands::topk(rest),
        "pair" => commands::pair(rest),
        "update" => commands::update(rest),
        "serve" => commands::serve(rest),
        "help" | "--help" | "-h" => {
            println!("{}", commands::USAGE);
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{}", commands::USAGE)),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
