//! End-to-end tests of the `prsim` binary: generate → stats → build →
//! query → pair workflows through the real CLI surface.

use std::path::PathBuf;
use std::process::{Command, Output};

fn prsim(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_prsim"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("prsim_cli_test_{name}"));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).to_string()
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).to_string()
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = prsim(&[]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("USAGE"));
}

#[test]
fn help_succeeds() {
    let out = prsim(&["help"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("prsim generate"));
}

#[test]
fn unknown_command_fails() {
    let out = prsim(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown command"));
}

#[test]
fn generate_stats_round_trip() {
    let dir = tmpdir("gen");
    let graph = dir.join("g.bin");
    let out = prsim(&[
        "generate",
        "chung-lu",
        "--n",
        "500",
        "--avg-degree",
        "6",
        "--gamma",
        "2.0",
        "--seed",
        "7",
        "--out",
        graph.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("500 nodes"));

    let out = prsim(&["stats", graph.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("nodes      : 500"));
    assert!(text.contains("out-degree"));
}

#[test]
fn convert_text_binary() {
    let dir = tmpdir("convert");
    let txt = dir.join("g.txt");
    let bin = dir.join("g.bin");
    std::fs::write(&txt, "0 1\n1 2\n2 0\n").unwrap();
    let out = prsim(&["convert", txt.to_str().unwrap(), bin.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));
    let out = prsim(&["stats", bin.to_str().unwrap()]);
    assert!(stdout(&out).contains("edges      : 3"));
}

#[test]
fn build_then_query_with_index() {
    let dir = tmpdir("build_query");
    let graph = dir.join("g.bin");
    let sorted = dir.join("g_sorted.bin");
    let index = dir.join("g.prsimix");
    assert!(prsim(&[
        "generate",
        "chung-lu",
        "--n",
        "400",
        "--seed",
        "3",
        "--out",
        graph.to_str().unwrap(),
    ])
    .status
    .success());

    let out = prsim(&[
        "build",
        graph.to_str().unwrap(),
        "--index",
        index.to_str().unwrap(),
        "--eps",
        "0.1",
        "--sorted-out",
        sorted.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("built index"));
    assert!(index.exists() && sorted.exists());

    // Query against the persisted index + sorted graph.
    let out = prsim(&[
        "query",
        sorted.to_str().unwrap(),
        "--index",
        index.to_str().unwrap(),
        "--source",
        "0",
        "--top",
        "5",
        "--eps",
        "0.1",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("query node 0"));
    assert!(text.lines().filter(|l| l.contains('.')).count() >= 2);

    // Index-free query works too.
    let out = prsim(&[
        "query",
        graph.to_str().unwrap(),
        "--source",
        "1",
        "--top",
        "3",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
}

#[test]
fn f32_reserve_index_builds_smaller_and_queries() {
    let dir = tmpdir("f32_build");
    let graph = dir.join("g.bin");
    let wide = dir.join("g_f64.prsimix");
    let narrow = dir.join("g_f32.prsimix");
    assert!(prsim(&[
        "generate",
        "chung-lu",
        "--n",
        "400",
        "--seed",
        "3",
        "--out",
        graph.to_str().unwrap(),
    ])
    .status
    .success());

    let base = ["build", graph.to_str().unwrap(), "--eps", "0.1"];
    let out = prsim(&[&base[..], &["--index", wide.to_str().unwrap()]].concat());
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("(f64)"));
    let out = prsim(
        &[
            &base[..],
            &["--index", narrow.to_str().unwrap(), "--f32-reserves"],
        ]
        .concat(),
    );
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("(f32)"));

    // The serialized f32 arena is materially smaller than the f64 one.
    let wide_len = std::fs::metadata(&wide).unwrap().len();
    let narrow_len = std::fs::metadata(&narrow).unwrap().len();
    assert!(
        (narrow_len as f64) < 0.8 * wide_len as f64,
        "f32 index {narrow_len} bytes vs f64 {wide_len} bytes"
    );

    // And the f32 index answers queries (precision is self-described).
    let out = prsim(&[
        "query",
        graph.to_str().unwrap(),
        "--index",
        narrow.to_str().unwrap(),
        "--source",
        "0",
        "--top",
        "5",
        "--eps",
        "0.1",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("query node 0"));
}

#[test]
fn topk_command_works() {
    let dir = tmpdir("topk");
    let graph = dir.join("g.bin");
    assert!(prsim(&[
        "generate",
        "chung-lu",
        "--n",
        "300",
        "--seed",
        "5",
        "--out",
        graph.to_str().unwrap(),
    ])
    .status
    .success());
    let out = prsim(&[
        "topk",
        graph.to_str().unwrap(),
        "--source",
        "0",
        "--k",
        "5",
        "--eps",
        "0.1",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("top-5 of node 0"));
    assert!(text.contains("samples"));
}

#[test]
fn pair_estimates_known_value() {
    let dir = tmpdir("pair");
    let graph = dir.join("star.txt");
    // star_out over 6 nodes: s(1,2) = c = 0.6.
    let mut text = String::new();
    for leaf in 1..6 {
        text.push_str(&format!("0 {leaf}\n"));
    }
    std::fs::write(&graph, text).unwrap();
    let out = prsim(&[
        "pair",
        graph.to_str().unwrap(),
        "--u",
        "1",
        "--v",
        "2",
        "--samples",
        "40000",
        "--seed",
        "1",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let line = stdout(&out);
    let value: f64 = line
        .split('≈')
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("cannot parse output {line:?}"));
    assert!((value - 0.6).abs() < 0.02, "s(1,2) = {value}");
}

#[test]
fn query_rejects_out_of_range_source() {
    let dir = tmpdir("range");
    let graph = dir.join("g.txt");
    std::fs::write(&graph, "0 1\n1 0\n").unwrap();
    let out = prsim(&["query", graph.to_str().unwrap(), "--source", "99"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("out of range"));
}

#[test]
fn generate_all_models() {
    let dir = tmpdir("models");
    for (model, extra) in [
        (
            "chung-lu-directed",
            vec!["--n", "200", "--gamma", "1.8", "--gamma-in", "2.4"],
        ),
        ("ba", vec!["--n", "200", "--m-attach", "3"]),
        ("er", vec!["--n", "200", "--avg-degree", "5"]),
        (
            "sbm",
            vec![
                "--communities",
                "5",
                "--size",
                "20",
                "--p-in",
                "0.3",
                "--p-out",
                "0.01",
            ],
        ),
    ] {
        let path = dir.join(format!("{model}.bin"));
        let mut args = vec!["generate", model];
        args.extend(extra);
        args.extend(["--out", path.to_str().unwrap()]);
        let out = prsim(&args);
        assert!(out.status.success(), "{model}: {}", stderr(&out));
        assert!(prsim(&["stats", path.to_str().unwrap()]).status.success());
    }
}

#[test]
fn corrupt_index_is_reported_not_panicked() {
    let dir = tmpdir("corrupt");
    let graph = dir.join("g.txt");
    std::fs::write(&graph, "0 1\n1 2\n2 0\n").unwrap();
    let index = dir.join("bad.prsimix");
    std::fs::write(&index, b"not an index at all").unwrap();
    let out = prsim(&[
        "query",
        graph.to_str().unwrap(),
        "--index",
        index.to_str().unwrap(),
        "--source",
        "0",
    ]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("corrupt"), "{}", stderr(&out));
}

#[test]
fn update_replays_stream_incrementally() {
    let dir = tmpdir("update_inc");
    let graph = dir.join("g.txt");
    let out_graph = dir.join("g_after.txt");
    std::fs::write(&graph, "0 1\n1 2\n2 3\n3 4\n4 0\n").unwrap();
    let stream = dir.join("updates.txt");
    std::fs::write(&stream, "# grow then shrink\n+ 0 3\n+ 4 1\n- 1 2\n+ 4 1\n").unwrap();
    let out = prsim(&[
        "update",
        graph.to_str().unwrap(),
        "--stream",
        stream.to_str().unwrap(),
        "--probe",
        "0",
        "--out",
        out_graph.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("updates/s"), "{text}");
    assert!(text.contains("3 applied, 1 no-ops"), "{text}");
    assert!(text.contains("probe node 0"), "{text}");
    assert!(text.contains("6 edges"), "{text}");
    // The written graph reflects the replayed stream.
    let after = std::fs::read_to_string(&out_graph).unwrap();
    let mut lines: Vec<&str> = after.lines().collect();
    lines.sort_unstable();
    assert_eq!(lines, vec!["0 1", "0 3", "2 3", "3 4", "4 0", "4 1"]);
}

#[test]
fn update_rebuild_mode_batches() {
    let dir = tmpdir("update_reb");
    let graph = dir.join("g.txt");
    std::fs::write(&graph, "0 1\n1 2\n2 0\n").unwrap();
    let stream = dir.join("updates.txt");
    std::fs::write(&stream, "+ 0 2\n+ 1 0\n").unwrap();
    let out = prsim(&[
        "update",
        graph.to_str().unwrap(),
        "--stream",
        stream.to_str().unwrap(),
        "--mode",
        "rebuild",
        "--batch",
        "2",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("2 applied"), "{text}");
    // 2 applied updates at batch 2 = exactly one replay rebuild (the
    // initial build is charged to build time, not the replay).
    assert!(text.contains("1 rebuilds"), "{text}");
}

#[test]
fn update_rejects_mode_inapplicable_flags() {
    let dir = tmpdir("update_flags");
    let graph = dir.join("g.txt");
    std::fs::write(&graph, "0 1\n1 0\n").unwrap();
    let stream = dir.join("updates.txt");
    std::fs::write(&stream, "+ 0 1\n").unwrap();
    let g = graph.to_str().unwrap();
    let s = stream.to_str().unwrap();
    let out = prsim(&["update", g, "--stream", s, "--batch", "4"]);
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("--batch only applies"),
        "{}",
        stderr(&out)
    );
    let out = prsim(&[
        "update",
        g,
        "--stream",
        s,
        "--mode",
        "rebuild",
        "--drift-budget",
        "0.1",
    ]);
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("--drift-budget only applies"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn update_reports_malformed_stream_with_line() {
    let dir = tmpdir("update_bad");
    let graph = dir.join("g.txt");
    std::fs::write(&graph, "0 1\n").unwrap();
    let stream = dir.join("updates.txt");
    std::fs::write(&stream, "+ 0 1\n? 1 2\n").unwrap();
    let out = prsim(&[
        "update",
        graph.to_str().unwrap(),
        "--stream",
        stream.to_str().unwrap(),
    ]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("line 2"), "{err}");
    assert!(err.contains("\"?\""), "{err}");
}

#[test]
fn walk_cache_flags_control_the_cache() {
    let dir = tmpdir("walk_cache");
    let graph = dir.join("g.txt");
    std::fs::write(&graph, "0 1\n1 2\n2 0\n0 2\n2 1\n").unwrap();
    // Explicit budget and disabled cache both answer successfully.
    for extra in [&["--walk-cache", "2"][..], &["--no-walk-cache"][..]] {
        let mut args = vec![
            "query",
            graph.to_str().unwrap(),
            "--source",
            "0",
            "--seed",
            "1",
            "--top",
            "3",
        ];
        args.extend_from_slice(extra);
        let out = prsim(&args);
        assert!(out.status.success(), "{:?}: {}", extra, stderr(&out));
        assert!(stdout(&out).contains("query node 0"));
    }
    // The two flags conflict.
    let out = prsim(&[
        "query",
        graph.to_str().unwrap(),
        "--source",
        "0",
        "--walk-cache",
        "4",
        "--no-walk-cache",
    ]);
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("mutually exclusive"),
        "{}",
        stderr(&out)
    );
    // A budget over the validation ceiling is rejected by the engine.
    let out = prsim(&[
        "query",
        graph.to_str().unwrap(),
        "--source",
        "0",
        "--walk-cache",
        "99999999",
    ]);
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("walk_cache_budget"),
        "{}",
        stderr(&out)
    );
}
