//! End-to-end tests of `prsim serve`: the stdio protocol round trip,
//! SIGKILL crash recovery over TCP (the CI `server-recovery` gate), and
//! torn-tail WAL repair through the real binary.
//!
//! The crash test's contract: after killing the server at an arbitrary
//! point in an update stream, a restart over the same WAL directory
//! must serve scores **bit-identical** to an uninterrupted server that
//! applied exactly the committed prefix. The committed prefix `P`
//! satisfies `acked ⊆ P ⊆ sent` (fsync happens before the ack, the kill
//! can land after a record's fsync but before its ack is read); the
//! test learns `|P|` from the recovered server's `applied_lsn`.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("prsim_serve_test_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Generates the shared test graph into `dir` and returns its path.
fn make_graph(dir: &Path) -> String {
    let graph = dir.join("g.bin");
    let out = Command::new(env!("CARGO_BIN_EXE_prsim"))
        .args([
            "generate",
            "chung-lu",
            "--n",
            "400",
            "--avg-degree",
            "6",
            "--gamma",
            "2.0",
            "--seed",
            "42",
            "--out",
            graph.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "generate failed: {:?}", out);
    graph.to_str().unwrap().to_string()
}

/// Engine flags shared by every server in a test (state equivalence
/// requires identical configuration).
const ENGINE_FLAGS: &[&str] = &["--eps", "0.2", "--hubs", "16", "--walk-cache", "32"];

/// Starts `prsim serve --listen 127.0.0.1:0` and returns the child plus
/// the bound address parsed from its `listening` line.
fn spawn_tcp_server(graph: &str, wal: &Path) -> (Child, String) {
    spawn_tcp_server_with(graph, wal, &[])
}

/// [`spawn_tcp_server`] with extra serve flags (chaos hooks, queue
/// bounds) appended.
fn spawn_tcp_server_with(graph: &str, wal: &Path, extra: &[&str]) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_prsim"))
        .args(["serve", graph, "--wal", wal.to_str().unwrap()])
        .args(ENGINE_FLAGS)
        .args(["--segment-bytes", "4096", "--listen", "127.0.0.1:0"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("server spawns");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut lines = BufReader::new(stdout).lines();
    let banner = lines
        .next()
        .expect("server prints its listening line")
        .expect("readable stdout");
    let addr = banner
        .strip_prefix("listening ")
        .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
        .to_string();
    (child, addr)
}

struct ProtocolClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl ProtocolClient {
    fn connect(addr: &str) -> Self {
        let stream = TcpStream::connect(addr).expect("connects");
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .unwrap();
        ProtocolClient {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").expect("request written");
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("response read");
        line.trim_end().to_string()
    }

    fn request(&mut self, line: &str) -> String {
        self.send(line);
        self.recv()
    }
}

/// The deterministic update stream both servers replay. Deletes target
/// likely-present low-degree pairs, inserts add fresh edges; what
/// matters is that batch `i` is identical across servers.
fn update_line(i: usize) -> String {
    let u = (i * 13 + 7) % 400;
    let v = (i * 31 + 1) % 400;
    let w = (i * 17 + 3) % 400;
    if i % 3 == 2 {
        format!("update - {u} {v} + {v} {w}")
    } else {
        format!("update + {u} {v} + {w} {u}")
    }
}

/// Query fingerprint lines with the `epoch=` field stripped: the epoch
/// counts publishes within one process (a recovered server is on epoch
/// 1), while everything else — lsn, entries and every score bit —
/// must match exactly.
fn fingerprint(client: &mut ProtocolClient) -> Vec<String> {
    (0..8u32)
        .map(|i| {
            let u = i * 47 % 400;
            let line = client.request(&format!("query {u} top=8 seed={}", 0xBEEF + u64::from(u)));
            assert!(line.starts_with("ok "), "query failed: {line}");
            line.split_whitespace()
                .filter(|t| !t.starts_with("epoch="))
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect()
}

fn field(line: &str, key: &str) -> u64 {
    line.split_whitespace()
        .find_map(|t| t.strip_prefix(key))
        .unwrap_or_else(|| panic!("no {key} in {line:?}"))
        .parse()
        .unwrap_or_else(|_| panic!("bad {key} in {line:?}"))
}

#[test]
fn stdio_round_trip() {
    let dir = tmpdir("stdio");
    let graph = make_graph(&dir);
    let wal = dir.join("wal");

    let mut child = Command::new(env!("CARGO_BIN_EXE_prsim"))
        .args(["serve", &graph, "--wal", wal.to_str().unwrap()])
        .args(ENGINE_FLAGS)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("server spawns");
    let mut stdin = child.stdin.take().unwrap();
    write!(
        stdin,
        "query 5 top=3 seed=7\nupdate + 1 2 - 3 4\nsync\nstats\ncheckpoint\nbogus\nshutdown\n"
    )
    .unwrap();
    drop(stdin);
    let out = child.wait_with_output().expect("server exits");
    assert!(out.status.success(), "clean exit: {:?}", out.status);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 7, "one response per request: {stdout}");
    assert!(
        lines[0].starts_with("ok epoch=1 lsn=0 node=5"),
        "{}",
        lines[0]
    );
    assert_eq!(lines[1], "ok lsn=1 queued=2");
    assert_eq!(lines[2], "ok applied_lsn=1 epoch=2");
    assert!(
        lines[3].contains("applied_lsn=1") && lines[3].contains("queue_depth=0"),
        "{}",
        lines[3]
    );
    assert_eq!(
        lines[4],
        "ok checkpoint lsn=1 bytes=".to_string() + lines[4].rsplit('=').next().unwrap()
    );
    assert!(field(lines[4], "bytes=") > 0, "{}", lines[4]);
    assert!(
        lines[5].starts_with("err fatal parse unknown command"),
        "{}",
        lines[5]
    );
    assert_eq!(lines[6], "ok bye");

    // The checkpoint must have landed in the WAL directory.
    let snaps = std::fs::read_dir(&wal)
        .unwrap()
        .filter(|e| {
            e.as_ref()
                .unwrap()
                .file_name()
                .to_string_lossy()
                .starts_with("ckpt-")
        })
        .count();
    assert_eq!(snaps, 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sigkill_recovery_is_bit_identical_to_uninterrupted_run() {
    let dir = tmpdir("sigkill");
    let graph = make_graph(&dir);
    let wal_crash = dir.join("wal_crash");

    // Phase 1: stream updates and SIGKILL the server mid-stream. The
    // first `ACKED` batches are confirmed durable; the rest are in
    // flight — sent but with unread acks — when the kill lands.
    const SENT: usize = 40;
    const ACKED: usize = 25;
    let (mut server, addr) = spawn_tcp_server(&graph, &wal_crash);
    let mut client = ProtocolClient::connect(&addr);
    for i in 0..SENT {
        client.send(&update_line(i));
        if i < ACKED {
            let ack = client.recv();
            assert_eq!(field(&ack, "lsn="), i as u64 + 1, "{ack}");
        }
    }
    server.kill().expect("SIGKILL delivered"); // Child::kill is SIGKILL on unix
    server.wait().expect("reaped");

    // Phase 2: restart over the crashed WAL. Replay must land on a
    // committed prefix P with ACKED <= P <= SENT.
    let (server, addr) = spawn_tcp_server(&graph, &wal_crash);
    let mut client = ProtocolClient::connect(&addr);
    let stats = client.request("stats");
    let committed = field(&stats, "applied_lsn=");
    assert!(
        (ACKED as u64..=SENT as u64).contains(&committed),
        "committed prefix {committed} outside [{ACKED}, {SENT}]: {stats}"
    );
    assert_eq!(field(&stats, "durable_lsn="), committed);
    assert_eq!(field(&stats, "replayed_records="), committed);
    let recovered = fingerprint(&mut client);
    assert_eq!(client.request("shutdown"), "ok bye");
    server.wait_with_output().expect("clean exit");

    // Phase 3: an uninterrupted server applies exactly the committed
    // prefix. Its responses must match the recovered server's bit for
    // bit.
    let wal_ref = dir.join("wal_ref");
    let (server, addr) = spawn_tcp_server(&graph, &wal_ref);
    let mut client = ProtocolClient::connect(&addr);
    for i in 0..committed as usize {
        let ack = client.request(&update_line(i));
        assert!(ack.starts_with("ok "), "{ack}");
    }
    let sync = client.request("sync");
    assert_eq!(field(&sync, "applied_lsn="), committed);
    let reference = fingerprint(&mut client);
    assert_eq!(client.request("shutdown"), "ok bye");
    server.wait_with_output().expect("clean exit");

    assert_eq!(
        recovered, reference,
        "crash recovery must serve bit-identical scores"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sigterm_drains_to_a_bit_identical_clean_state() {
    let dir = tmpdir("sigterm");
    let graph = make_graph(&dir);
    let wal_drain = dir.join("wal_drain");

    // Phase 1: stream updates, then SIGTERM. Unlike the SIGKILL gate,
    // *everything* acked must survive: the drain finishes the committed
    // queue, writes a final checkpoint and exits 0.
    const SENT: usize = 20;
    let (mut server, addr) = spawn_tcp_server(&graph, &wal_drain);
    let mut client = ProtocolClient::connect(&addr);
    for i in 0..SENT {
        let ack = client.request(&update_line(i));
        assert!(ack.starts_with("ok "), "{ack}");
    }
    drop(client);
    let status = Command::new("kill")
        .args(["-TERM", &server.id().to_string()])
        .status()
        .expect("kill runs");
    assert!(status.success(), "SIGTERM delivered");
    let exit = server.wait().expect("reaped");
    assert!(exit.success(), "graceful drain must exit 0, got {exit:?}");

    // Phase 2: restart over the drained WAL. The final checkpoint
    // covers every acked update, so replay is empty and nothing is
    // lost.
    let (server, addr) = spawn_tcp_server(&graph, &wal_drain);
    let mut client = ProtocolClient::connect(&addr);
    let stats = client.request("stats");
    assert_eq!(field(&stats, "applied_lsn="), SENT as u64, "{stats}");
    assert_eq!(
        field(&stats, "replayed_records="),
        0,
        "drain checkpoint must cover all acked updates: {stats}"
    );
    let drained = fingerprint(&mut client);
    assert_eq!(client.request("shutdown"), "ok bye");
    server.wait_with_output().expect("clean exit");

    // Phase 3: the uninterrupted reference applies the same stream,
    // checkpoints explicitly and shuts down via the protocol — then
    // restarts. Both servers now boot from a checkpoint at the same
    // LSN, and that rebuild is deterministic, so the drained server
    // must serve the reference's exact bits.
    let wal_ref = dir.join("wal_ref");
    let (server, addr) = spawn_tcp_server(&graph, &wal_ref);
    let mut client = ProtocolClient::connect(&addr);
    for i in 0..SENT {
        let ack = client.request(&update_line(i));
        assert!(ack.starts_with("ok "), "{ack}");
    }
    let sync = client.request("sync");
    assert_eq!(field(&sync, "applied_lsn="), SENT as u64);
    let ckpt = client.request("checkpoint");
    assert_eq!(field(&ckpt, "lsn="), SENT as u64, "{ckpt}");
    assert_eq!(client.request("shutdown"), "ok bye");
    server.wait_with_output().expect("clean exit");
    let (server, addr) = spawn_tcp_server(&graph, &wal_ref);
    let mut client = ProtocolClient::connect(&addr);
    let reference = fingerprint(&mut client);
    assert_eq!(client.request("shutdown"), "ok bye");
    server.wait_with_output().expect("clean exit");

    assert_eq!(
        drained, reference,
        "a drained server must be bit-identical to an uninterrupted clean shutdown"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn concurrent_clients_through_the_binary_stay_deterministic() {
    let dir = tmpdir("concurrent");
    let graph = make_graph(&dir);
    let wal = dir.join("wal");
    let (server, addr) = spawn_tcp_server_with(&graph, &wal, &["--max-clients", "8"]);

    // Settle some state, capture the sequential reference fingerprint.
    let mut c0 = ProtocolClient::connect(&addr);
    for i in 0..10 {
        let ack = c0.request(&update_line(i));
        assert!(ack.starts_with("ok "), "{ack}");
    }
    let sync = c0.request("sync");
    assert_eq!(field(&sync, "applied_lsn="), 10);
    let expected = fingerprint(&mut c0);

    // One client connects and stalls for the whole test; it must not
    // block the four concurrently querying clients.
    let staller = TcpStream::connect(&addr).expect("staller connects");
    let workers: Vec<_> = (0..4)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut c = ProtocolClient::connect(&addr);
                fingerprint(&mut c)
            })
        })
        .collect();
    for w in workers {
        assert_eq!(
            w.join().expect("worker finishes"),
            expected,
            "concurrent replies must be byte-identical to sequential ones"
        );
    }
    drop(staller);

    assert_eq!(c0.request("shutdown"), "ok bye");
    server.wait_with_output().expect("clean exit");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn health_probe_busy_rejection_and_timed_queries() {
    let dir = tmpdir("busy");
    let graph = make_graph(&dir);
    let wal = dir.join("wal");

    // One batch inflight at a time, held for 600 ms, with a 50 ms busy
    // budget: the second back-to-back update must get BUSY.
    let (server, addr) = spawn_tcp_server_with(
        &graph,
        &wal,
        &[
            "--queue-depth",
            "1",
            "--applier-delay-ms",
            "600",
            "--busy-timeout-ms",
            "50",
            "--client-timeout-ms",
            "120000",
        ],
    );
    let mut client = ProtocolClient::connect(&addr);
    assert_eq!(client.request("health"), "ok health=ok");

    // Timed queries report their degradation flag; a generous budget
    // finishes the full sample.
    let timed = client.request("query 5 top=3 seed=7 timeout=60000");
    assert!(
        timed.starts_with("ok ") && timed.ends_with(" degraded=false"),
        "{timed}"
    );
    // Untimed queries keep their exact legacy shape (no flag).
    let untimed = client.request("query 5 top=3 seed=7");
    assert!(
        untimed.starts_with("ok ") && !untimed.contains("degraded"),
        "{untimed}"
    );

    assert!(
        client.request(&update_line(0)).starts_with("ok "),
        "first update admitted"
    );
    let busy = client.request(&update_line(1));
    assert!(busy.starts_with("err retryable busy"), "{busy}");
    // Overload is not an outage: health stays ok, reads keep serving,
    // and the same update succeeds once the applier drains.
    assert_eq!(client.request("health"), "ok health=ok");
    client.request("sync");
    let retried = client.request(&update_line(1));
    assert_eq!(field(&retried, "lsn="), 2, "{retried}");
    client.request("sync");
    let stats = client.request("stats");
    assert_eq!(field(&stats, "busy_rejects="), 1, "{stats}");
    assert!(field(&stats, "max_queue_bytes=") > 0, "{stats}");
    assert!(stats.contains(" health=ok"), "{stats}");
    assert_eq!(client.request("shutdown"), "ok bye");
    server.wait_with_output().expect("clean exit");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn applier_panic_degrades_to_read_only_but_keeps_serving() {
    let dir = tmpdir("degraded");
    let graph = make_graph(&dir);
    let wal = dir.join("wal");

    let (server, addr) = spawn_tcp_server_with(&graph, &wal, &["--chaos-applier-panic-lsn", "2"]);
    let mut client = ProtocolClient::connect(&addr);
    assert!(client.request(&update_line(0)).starts_with("ok "));
    client.request("sync");
    let before = fingerprint(&mut client);

    // LSN 2 is acked durable, then its application panics.
    assert!(client.request(&update_line(1)).starts_with("ok "));
    let sync = client.request("sync");
    assert!(sync.starts_with("err fatal "), "{sync}");

    // Degraded mode: reads still serve the last published epoch, writes
    // fail fatally, health says why.
    let health = client.request("health");
    assert!(health.starts_with("ok health=degraded reason="), "{health}");
    assert_eq!(
        fingerprint(&mut client),
        before,
        "reads serve the pre-panic epoch"
    );
    let refused = client.request(&update_line(2));
    assert!(refused.starts_with("err fatal "), "{refused}");
    let stats = client.request("stats");
    assert!(stats.contains(" health=degraded"), "{stats}");
    assert_eq!(client.request("shutdown"), "ok bye");
    server
        .wait_with_output()
        .expect("degraded server still exits cleanly");

    // The acked-but-unapplied record is on the log: a restart without
    // the chaos hook applies it and reports healthy.
    let (server, addr) = spawn_tcp_server(&graph, &wal);
    let mut client = ProtocolClient::connect(&addr);
    let stats = client.request("stats");
    assert_eq!(field(&stats, "applied_lsn="), 2, "{stats}");
    assert_eq!(client.request("health"), "ok health=ok");
    assert_eq!(client.request("shutdown"), "ok bye");
    server.wait_with_output().expect("clean exit");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sigkill_under_fault_injection_recovers_exactly_the_acked_updates() {
    let dir = tmpdir("chaos_kill");
    let graph = make_graph(&dir);
    let wal_chaos = dir.join("wal_chaos");

    // Phase 1: stream updates through a fault-injecting WAL, reading
    // every ack (a failed append repairs its tail before responding, so
    // after each exchange the log is exactly the acked batches), then
    // SIGKILL the server.
    const SENT: usize = 30;
    let (mut server, addr) = spawn_tcp_server_with(&graph, &wal_chaos, &["--fault-seed", "9034"]);
    let mut client = ProtocolClient::connect(&addr);
    let mut acked: Vec<String> = Vec::new();
    for i in 0..SENT {
        let line = update_line(i);
        let resp = client.request(&line);
        if resp.starts_with("ok ") {
            assert_eq!(field(&resp, "lsn="), acked.len() as u64 + 1, "{resp}");
            acked.push(line);
        } else {
            assert!(
                resp.starts_with("err retryable "),
                "injected faults are transient: {resp}"
            );
        }
    }
    assert!(!acked.is_empty(), "some updates must survive the schedule");
    server.kill().expect("SIGKILL delivered");
    server.wait().expect("reaped");

    // Phase 2: restart on clean storage. Replay must surface exactly
    // the acked updates — an errored append never reaches the log.
    let (server, addr) = spawn_tcp_server(&graph, &wal_chaos);
    let mut client = ProtocolClient::connect(&addr);
    let stats = client.request("stats");
    assert_eq!(field(&stats, "applied_lsn="), acked.len() as u64, "{stats}");
    let recovered = fingerprint(&mut client);
    assert_eq!(client.request("shutdown"), "ok bye");
    server.wait_with_output().expect("clean exit");

    // Phase 3: a reference server fed exactly the acked updates, no
    // faults, must serve bit-identical scores.
    let wal_ref = dir.join("wal_ref");
    let (server, addr) = spawn_tcp_server(&graph, &wal_ref);
    let mut client = ProtocolClient::connect(&addr);
    for line in &acked {
        assert!(client.request(line).starts_with("ok "));
    }
    client.request("sync");
    let reference = fingerprint(&mut client);
    assert_eq!(client.request("shutdown"), "ok bye");
    server.wait_with_output().expect("clean exit");

    assert_eq!(
        recovered, reference,
        "chaos-era log replays to the acked-only state"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_tail_is_repaired_through_the_binary() {
    let dir = tmpdir("torn");
    let graph = make_graph(&dir);
    let wal = dir.join("wal");

    // Write a few batches and shut down cleanly.
    let (server, addr) = spawn_tcp_server(&graph, &wal);
    let mut client = ProtocolClient::connect(&addr);
    for i in 0..5 {
        client.request(&update_line(i));
    }
    client.request("sync");
    assert_eq!(client.request("shutdown"), "ok bye");
    server.wait_with_output().expect("clean exit");

    // Tear the log: append half a record to the newest segment.
    let mut segments: Vec<PathBuf> = std::fs::read_dir(&wal)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.file_name().unwrap().to_string_lossy().starts_with("wal-"))
        .collect();
    segments.sort();
    let tail = segments.last().expect("log has segments");
    let mut bytes = std::fs::read(tail).unwrap();
    bytes.extend_from_slice(&[0x40, 0x00, 0x00, 0x00, 0xDE, 0xAD, 0xBE]);
    std::fs::write(tail, &bytes).unwrap();

    // Restart: the torn tail must be truncated away, the five committed
    // batches preserved, and the server must keep accepting updates.
    let (server, addr) = spawn_tcp_server(&graph, &wal);
    let mut client = ProtocolClient::connect(&addr);
    let stats = client.request("stats");
    assert_eq!(field(&stats, "applied_lsn="), 5, "{stats}");
    assert_eq!(field(&stats, "truncated_bytes="), 7, "{stats}");
    let ack = client.request(&update_line(5));
    assert_eq!(field(&ack, "lsn="), 6, "LSNs continue past the repair");
    assert_eq!(client.request("shutdown"), "ok bye");
    server.wait_with_output().expect("clean exit");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sigkill_recovery_is_bit_identical_with_paging_enabled() {
    let dir = tmpdir("sigkill_paged");
    let graph = make_graph(&dir);
    let wal_crash = dir.join("wal_crash");

    // Every server in this test serves out-of-core: the postings arena
    // is demoted to a page file under a hard memory budget. Small pages
    // force real paging traffic on the 400-node graph.
    const PAGED_FLAGS: &[&str] = &[
        "--memory-budget",
        "1048576",
        "--page-bytes",
        "256",
        "--page-hot",
        "4",
    ];

    // Phase 1: stream updates and SIGKILL the paged server mid-stream.
    const SENT: usize = 40;
    const ACKED: usize = 25;
    let (mut server, addr) = spawn_tcp_server_with(&graph, &wal_crash, PAGED_FLAGS);
    let mut client = ProtocolClient::connect(&addr);
    for i in 0..SENT {
        client.send(&update_line(i));
        if i < ACKED {
            let ack = client.recv();
            assert_eq!(field(&ack, "lsn="), i as u64 + 1, "{ack}");
        }
    }
    server.kill().expect("SIGKILL delivered");
    server.wait().expect("reaped");

    // Phase 2: restart paged over the crashed WAL (stale arena
    // generations from the killed process are cleaned at boot).
    let (server, addr) = spawn_tcp_server_with(&graph, &wal_crash, PAGED_FLAGS);
    let mut client = ProtocolClient::connect(&addr);
    let stats = client.request("stats");
    let committed = field(&stats, "applied_lsn=");
    assert!(
        (ACKED as u64..=SENT as u64).contains(&committed),
        "committed prefix {committed} outside [{ACKED}, {SENT}]: {stats}"
    );
    // The stats line must report the buffer pool, and the pool must
    // honor the budget.
    assert!(
        field(&stats, "paged_peak_resident_bytes=") <= 1_048_576,
        "budget overrun: {stats}"
    );
    assert_eq!(field(&stats, "page_unhealed="), 0, "{stats}");
    assert_eq!(client.request("health"), "ok health=ok");
    let recovered = fingerprint(&mut client);
    assert_eq!(client.request("shutdown"), "ok bye");
    server.wait_with_output().expect("clean exit");

    // Phase 3: an uninterrupted paged server fed exactly the committed
    // prefix must serve bit-identical scores.
    let wal_ref = dir.join("wal_ref");
    let (server, addr) = spawn_tcp_server_with(&graph, &wal_ref, PAGED_FLAGS);
    let mut client = ProtocolClient::connect(&addr);
    for i in 0..committed as usize {
        let ack = client.request(&update_line(i));
        assert!(ack.starts_with("ok "), "{ack}");
    }
    let sync = client.request("sync");
    assert_eq!(field(&sync, "applied_lsn="), committed);
    let reference = fingerprint(&mut client);
    assert_eq!(client.request("shutdown"), "ok bye");
    server.wait_with_output().expect("clean exit");

    assert_eq!(
        recovered, reference,
        "paged crash recovery must serve bit-identical scores"
    );
    std::fs::remove_dir_all(&dir).ok();
}
