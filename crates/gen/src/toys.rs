//! Small deterministic fixture graphs shared by the test suites.

use prsim_graph::{DiGraph, GraphBuilder, NodeId};

/// Directed path `0 → 1 → … → n-1`.
pub fn path(n: usize) -> DiGraph {
    let edges: Vec<_> = (1..n as NodeId).map(|v| (v - 1, v)).collect();
    DiGraph::from_edges(n, &edges)
}

/// Directed cycle `0 → 1 → … → n-1 → 0`.
pub fn cycle(n: usize) -> DiGraph {
    assert!(n >= 1);
    let edges: Vec<_> = (0..n as NodeId)
        .map(|v| (v, (v + 1) % n as NodeId))
        .collect();
    DiGraph::from_edges(n, &edges)
}

/// In-star: every leaf `1..n` points at the hub `0`.
pub fn star_in(n: usize) -> DiGraph {
    assert!(n >= 1);
    let edges: Vec<_> = (1..n as NodeId).map(|v| (v, 0)).collect();
    DiGraph::from_edges(n, &edges)
}

/// Out-star: the hub `0` points at every leaf `1..n`.
pub fn star_out(n: usize) -> DiGraph {
    assert!(n >= 1);
    let edges: Vec<_> = (1..n as NodeId).map(|v| (0, v)).collect();
    DiGraph::from_edges(n, &edges)
}

/// Complete directed graph (all ordered pairs, no self loops).
///
/// Panics when the `n·(n−1)` edge count overflows `usize` or `n` exceeds
/// the node-id range; use [`try_complete`] for a recoverable error.
pub fn complete(n: usize) -> DiGraph {
    match try_complete(n) {
        Ok(g) => g,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`complete`].
///
/// Rejects any `n` whose edge count `n·(n−1)` overflows `usize` — the
/// former `Vec::with_capacity(n * n.saturating_sub(1))` wrapped silently
/// in release builds, handing the allocator a bogus small capacity — and
/// any `n` that does not fit the `u32` node-id space.
pub fn try_complete(n: usize) -> Result<DiGraph, crate::GenError> {
    let overflow = crate::GenError::SizeOverflow {
        generator: "complete",
        n,
    };
    let cap = n.checked_mul(n.saturating_sub(1)).ok_or(overflow.clone())?;
    if n >= u32::MAX as usize {
        return Err(overflow);
    }
    let mut edges = Vec::with_capacity(cap);
    for u in 0..n as NodeId {
        for v in 0..n as NodeId {
            if u != v {
                edges.push((u, v));
            }
        }
    }
    Ok(DiGraph::from_edges(n, &edges))
}

/// The paper's §3.4 gadget: nodes `w, v, x_1 … x_k` with edges
/// `w → x_i` and `x_i → v` for every `i`.
///
/// On this graph the *simple* backward walk (Algorithm 2) started at `w`
/// produces estimates of `π̂_2(v, w)` as large as `(1−√c)·k`, demonstrating
/// the unbounded-variance problem the Variance Bounded Backward Walk fixes.
///
/// Node ids: `w = 0`, `v = 1`, `x_i = 1 + i` for `i = 1..=k`.
pub fn two_level_gadget(k: usize) -> DiGraph {
    assert!(k >= 1);
    let mut b = GraphBuilder::new();
    for i in 0..k as NodeId {
        let x = 2 + i;
        b.add_edge(0, x);
        b.add_edge(x, 1);
    }
    b.build()
}

/// Two disjoint directed triangles — a minimal multi-component fixture.
pub fn two_triangles() -> DiGraph {
    DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)])
}

/// The 8-node example graph from the original SimRank paper (Jeh & Widom),
/// a small "university" web graph. Node names (for reference):
/// 0 = Univ, 1 = ProfA, 2 = ProfB, 3 = StudentA, 4 = StudentB.
pub fn jeh_widom_university() -> DiGraph {
    DiGraph::from_edges(
        5,
        &[
            (0, 1), // Univ -> ProfA
            (0, 2), // Univ -> ProfB
            (1, 3), // ProfA -> StudentA
            (2, 4), // ProfB -> StudentB
            (3, 0), // StudentA -> Univ
            (4, 2), // StudentB -> ProfB
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_shape() {
        let g = path(4);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.out_degree(0), 1);
        assert_eq!(g.out_degree(3), 0);
        assert_eq!(g.in_degree(0), 0);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(5);
        assert_eq!(g.edge_count(), 5);
        for u in g.nodes() {
            assert_eq!(g.out_degree(u), 1);
            assert_eq!(g.in_degree(u), 1);
        }
    }

    #[test]
    fn stars() {
        let g = star_in(6);
        assert_eq!(g.in_degree(0), 5);
        assert_eq!(g.out_degree(0), 0);
        let g = star_out(6);
        assert_eq!(g.out_degree(0), 5);
        assert_eq!(g.in_degree(0), 0);
    }

    #[test]
    fn complete_shape() {
        let g = complete(4);
        assert_eq!(g.edge_count(), 12);
        for u in g.nodes() {
            assert_eq!(g.out_degree(u), 3);
            assert_eq!(g.in_degree(u), 3);
        }
    }

    #[test]
    fn complete_boundaries() {
        // n·(n−1) overflows usize: must be a clean error, not a wrapped
        // capacity (the old with_capacity(n * n.saturating_sub(1)) bug).
        assert_eq!(
            try_complete(usize::MAX),
            Err(crate::GenError::SizeOverflow {
                generator: "complete",
                n: usize::MAX
            })
        );
        // n·(n−1) fits usize but n exceeds the u32 node-id space.
        assert!(try_complete(u32::MAX as usize).is_err());
        // Degenerate small sizes are fine.
        assert_eq!(try_complete(0).unwrap().edge_count(), 0);
        assert_eq!(try_complete(1).unwrap().edge_count(), 0);
        // Fallible and panicking variants agree.
        let a = try_complete(5).unwrap();
        let b = complete(5);
        assert_eq!(a.edge_count(), b.edge_count());
        assert_eq!(a.node_count(), b.node_count());
    }

    #[test]
    fn gadget_shape() {
        let g = two_level_gadget(10);
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.out_degree(0), 10);
        assert_eq!(g.in_degree(1), 10);
        for i in 0..10u32 {
            let x = 2 + i;
            assert_eq!(g.in_neighbors(x), &[0]);
            assert_eq!(g.out_neighbors(x), &[1]);
        }
    }

    #[test]
    fn university_shape() {
        let g = jeh_widom_university();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.in_degree(2), 2); // ProfB referenced by Univ and StudentB
    }
}
