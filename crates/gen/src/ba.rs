//! Barabási–Albert preferential attachment.
//!
//! Classic growth model: each new node attaches `m_attach` edges to
//! existing nodes chosen proportionally to their current degree. The
//! resulting degree distribution has density exponent 3, i.e. cumulative
//! exponent γ = 2 — exactly the boundary case of the paper's Theorem 3.12
//! (`O(log²n / ε²)` query cost), which makes BA graphs a useful fixture.

use prsim_graph::{DiGraph, GraphBuilder, NodeId};
use rand::Rng;

use crate::rng_from_seed;

/// Generates an undirected Barabási–Albert graph (stored symmetrically).
///
/// Starts from a `m_attach + 1`-clique and adds `n - m_attach - 1` nodes,
/// each with `m_attach` edges attached preferentially by degree (the
/// repeated-endpoint-list trick gives exact degree-proportional sampling
/// in O(1) per draw).
///
/// # Panics
///
/// Panics if `m_attach == 0` or `n <= m_attach`.
pub fn barabasi_albert(n: usize, m_attach: usize, seed: u64) -> DiGraph {
    assert!(m_attach > 0, "m_attach must be positive");
    assert!(n > m_attach, "need n > m_attach");
    let mut rng = rng_from_seed(seed);

    // endpoints[k] appears once per incident edge: sampling a uniform
    // element of `endpoints` is degree-proportional sampling.
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * m_attach * n);
    let mut builder = GraphBuilder::new();
    builder.ensure_nodes(n);

    // Seed clique over nodes 0..=m_attach.
    let seed_nodes = m_attach + 1;
    for u in 0..seed_nodes {
        for v in (u + 1)..seed_nodes {
            builder.add_undirected_edge(u as NodeId, v as NodeId);
            endpoints.push(u as NodeId);
            endpoints.push(v as NodeId);
        }
    }

    let mut chosen: Vec<NodeId> = Vec::with_capacity(m_attach);
    for u in seed_nodes..n {
        chosen.clear();
        // Sample m_attach distinct targets preferentially.
        while chosen.len() < m_attach {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            builder.add_undirected_edge(u as NodeId, t);
            endpoints.push(u as NodeId);
            endpoints.push(t);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use prsim_graph::degrees::{degree_sequence, powerlaw_exponent_hill, DegreeKind};
    use prsim_graph::traversal::weakly_connected_components;

    #[test]
    fn node_and_edge_counts() {
        let n = 1_000;
        let m_attach = 4;
        let g = barabasi_albert(n, m_attach, 0);
        assert_eq!(g.node_count(), n);
        // Each direction stored: clique edges + m_attach per new node.
        let seed_edges = (m_attach + 1) * m_attach / 2;
        let expect = 2 * (seed_edges + (n - m_attach - 1) * m_attach);
        assert_eq!(g.edge_count(), expect);
    }

    #[test]
    fn connected_and_symmetric() {
        let g = barabasi_albert(500, 3, 1);
        let (_, k) = weakly_connected_components(&g);
        assert_eq!(k, 1);
        for u in g.nodes() {
            for &v in g.out_neighbors(u) {
                assert!(g.out_neighbors(v).contains(&u));
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(barabasi_albert(300, 2, 9), barabasi_albert(300, 2, 9));
        assert_ne!(barabasi_albert(300, 2, 9), barabasi_albert(300, 2, 10));
    }

    #[test]
    fn tail_exponent_near_two() {
        let g = barabasi_albert(30_000, 5, 4);
        let degs = degree_sequence(&g, DegreeKind::Out);
        let est = powerlaw_exponent_hill(&degs, 20).unwrap();
        assert!((est - 2.0).abs() < 0.6, "hill exponent {est}, wanted ~2");
    }

    #[test]
    fn minimum_degree_is_m_attach() {
        let g = barabasi_albert(200, 3, 2);
        for u in g.nodes() {
            assert!(g.out_degree(u) >= 3, "node {u} degree {}", g.out_degree(u));
        }
    }
}
