//! Chung–Lu expected-degree power-law generator.
//!
//! The Chung–Lu model assigns each node `i` a weight `w_i` and inserts
//! edge `(i, j)` independently with probability `min(1, w_i·w_j / W)`
//! where `W = Σ w`. Choosing rank-based weights
//! `w_i ∝ (i+1)^{-1/γ}` yields a degree distribution whose complementary
//! cumulative distribution follows `P(deg ≥ k) ~ k^{-γ}` — precisely the
//! cumulative power-law exponent the PRSim analysis (Theorem 3.12)
//! is parameterized by, and the same convention used by Eq. (12) of the
//! paper for reverse-PageRank values.
//!
//! Sampling uses the Miller–Hagberg skipping technique: with weights
//! sorted in descending order, for a fixed `i` the probabilities
//! `p_{ij}` are non-increasing in `j`, so runs of non-edges can be
//! skipped geometrically and accepted with ratio `p_actual / p_bound`.
//! Expected running time is `O(n + m)`.

use prsim_graph::{DiGraph, GraphBuilder, NodeId};
use rand::Rng;

use crate::rng_from_seed;

/// Parameters of the Chung–Lu generators.
#[derive(Clone, Copy, Debug)]
pub struct ChungLuConfig {
    /// Number of nodes.
    pub n: usize,
    /// Target average degree d̄ (out-degree for the directed variant).
    pub avg_degree: f64,
    /// Cumulative power-law exponent γ of the (out-)degree distribution.
    pub gamma: f64,
    /// RNG seed.
    pub seed: u64,
}

impl ChungLuConfig {
    /// Convenience constructor.
    pub fn new(n: usize, avg_degree: f64, gamma: f64, seed: u64) -> Self {
        ChungLuConfig {
            n,
            avg_degree,
            gamma,
            seed,
        }
    }

    fn validate(&self) {
        assert!(self.n > 0, "n must be positive");
        assert!(self.avg_degree > 0.0, "avg_degree must be positive");
        assert!(self.gamma > 0.0, "gamma must be positive");
    }
}

/// Rank-based power-law weights `w_i = κ·(i+1)^{-1/γ}`, normalized so the
/// weight mean equals `avg_degree` and capped at `sqrt(W)` so that all edge
/// probabilities stay `< 1` (the standard Chung–Lu feasibility condition).
fn powerlaw_weights(n: usize, avg_degree: f64, gamma: f64) -> Vec<f64> {
    let beta = 1.0 / gamma;
    let raw: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(-beta)).collect();
    let raw_sum: f64 = raw.iter().sum();
    let target_sum = avg_degree * n as f64;
    let kappa = target_sum / raw_sum;
    let mut w: Vec<f64> = raw.into_iter().map(|r| kappa * r).collect();
    // Cap the head so that w_i * w_j / W <= 1 for all pairs; this truncates
    // the extreme hubs exactly like real datasets truncate at n.
    let total: f64 = w.iter().sum();
    let cap = total.sqrt();
    for wi in &mut w {
        if *wi > cap {
            *wi = cap;
        }
    }
    w
}

/// Generates an **undirected** Chung–Lu power-law graph (each edge stored
/// in both directions), the stand-in for the paper's hyperbolic generator
/// in Figure 6.
///
/// ```
/// use prsim_gen::{chung_lu_undirected, ChungLuConfig};
///
/// let g = chung_lu_undirected(ChungLuConfig::new(500, 8.0, 2.5, 42));
/// assert_eq!(g.node_count(), 500);
/// assert!(g.avg_degree() > 2.0);
/// ```
pub fn chung_lu_undirected(cfg: ChungLuConfig) -> DiGraph {
    cfg.validate();
    let mut rng = rng_from_seed(cfg.seed);
    // The undirected model spreads each edge over two endpoints: to hit an
    // average (total) degree of d̄, weights should sum so that the expected
    // number of undirected edges is n·d̄/2; using weights with mean d̄ gives
    // expected Σ_{i<j} w_i w_j / W ≈ W/2 = n·d̄/2 edges, i.e. average total
    // degree d̄ once both directions are stored.
    let w = powerlaw_weights(cfg.n, cfg.avg_degree, cfg.gamma);
    let total: f64 = w.iter().sum();

    // Weights are already descending (rank-based), so node ids double as
    // weight ranks and the output needs no relabeling.
    let mut b = GraphBuilder::new();
    b.ensure_nodes(cfg.n);
    for i in 0..cfg.n {
        let mut j = i + 1;
        if j >= cfg.n {
            break;
        }
        // Upper bound for the row: probabilities are non-increasing in j.
        let mut p_bound = (w[i] * w[j] / total).min(1.0);
        while j < cfg.n && p_bound > 0.0 {
            // Geometric skip: distance to next candidate under p_bound.
            let r: f64 = rng.gen_range(f64::EPSILON..1.0);
            let skip = if p_bound >= 1.0 {
                0
            } else {
                (r.ln() / (1.0 - p_bound).ln()).floor() as usize
            };
            j += skip;
            if j >= cfg.n {
                break;
            }
            let p_actual = (w[i] * w[j] / total).min(1.0);
            if rng.gen::<f64>() < p_actual / p_bound {
                b.add_undirected_edge(i as NodeId, j as NodeId);
            }
            p_bound = p_actual;
            j += 1;
        }
    }
    b.build()
}

/// Generates a **directed** Chung–Lu graph with independent out- and
/// in-weight sequences.
///
/// Out-weights follow a power law with exponent `gamma` (this is the γ of
/// the paper's Theorem 3.12); in-weights follow `gamma_in`. To decorrelate
/// out- and in-degree (real webs/social graphs have distinct hub sets), the
/// in-weight ranks are assigned via a deterministic permutation derived
/// from the seed.
pub fn chung_lu_directed(cfg: ChungLuConfig, gamma_in: f64, seed_perm: u64) -> DiGraph {
    cfg.validate();
    assert!(gamma_in > 0.0, "gamma_in must be positive");
    let mut rng = rng_from_seed(cfg.seed);

    let a = powerlaw_weights(cfg.n, cfg.avg_degree, cfg.gamma); // out-weights by rank
    let mut bw = powerlaw_weights(cfg.n, cfg.avg_degree, gamma_in); // in-weights by rank
    let total: f64 = a.iter().sum();
    // Rescale in-weights to the same total mass (required: Σa = Σb = S).
    let bsum: f64 = bw.iter().sum();
    for x in &mut bw {
        *x *= total / bsum;
    }

    // Permute which node holds which in-weight rank.
    let mut perm: Vec<u32> = (0..cfg.n as u32).collect();
    {
        let mut prng = rng_from_seed(seed_perm);
        // Fisher–Yates.
        for i in (1..cfg.n).rev() {
            let j = prng.gen_range(0..=i);
            perm.swap(i, j);
        }
    }

    let mut builder = GraphBuilder::new();
    builder.ensure_nodes(cfg.n);
    // For each source i (out-weight a[i]), skip-sample targets over the
    // descending in-weight ranks; perm maps rank -> node id.
    for (i, &ai) in a.iter().enumerate() {
        if ai <= 0.0 {
            continue;
        }
        let mut rank = 0usize;
        let mut p_bound = (ai * bw[0] / total).min(1.0);
        while rank < cfg.n && p_bound > 0.0 {
            let r: f64 = rng.gen_range(f64::EPSILON..1.0);
            let skip = if p_bound >= 1.0 {
                0
            } else {
                (r.ln() / (1.0 - p_bound).ln()).floor() as usize
            };
            rank += skip;
            if rank >= cfg.n {
                break;
            }
            let p_actual = (ai * bw[rank] / total).min(1.0);
            if rng.gen::<f64>() < p_actual / p_bound {
                let tgt = perm[rank];
                if tgt != i as u32 {
                    builder.add_edge(i as NodeId, tgt);
                }
            }
            p_bound = p_actual;
            rank += 1;
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use prsim_graph::degrees::{degree_sequence, powerlaw_exponent_ccdf_fit, DegreeKind};

    #[test]
    fn weights_mean_equals_target_before_cap() {
        let w = powerlaw_weights(10_000, 10.0, 2.5);
        let mean = w.iter().sum::<f64>() / w.len() as f64;
        // The cap can only lower the mean slightly.
        assert!(mean <= 10.0 + 1e-9);
        assert!(mean > 8.0, "mean {mean} too far below target");
        // Descending.
        assert!(w.windows(2).all(|p| p[0] >= p[1]));
    }

    #[test]
    fn undirected_deterministic_per_seed() {
        let cfg = ChungLuConfig::new(300, 6.0, 2.0, 7);
        let g1 = chung_lu_undirected(cfg);
        let g2 = chung_lu_undirected(cfg);
        assert_eq!(g1, g2);
        let g3 = chung_lu_undirected(ChungLuConfig::new(300, 6.0, 2.0, 8));
        assert_ne!(g1, g3);
    }

    #[test]
    fn undirected_is_symmetric() {
        let g = chung_lu_undirected(ChungLuConfig::new(200, 5.0, 2.0, 1));
        for u in g.nodes() {
            for &v in g.out_neighbors(u) {
                assert!(
                    g.out_neighbors(v).contains(&u),
                    "missing reverse edge {v}->{u}"
                );
            }
        }
    }

    #[test]
    fn undirected_hits_average_degree() {
        let g = chung_lu_undirected(ChungLuConfig::new(5_000, 10.0, 2.5, 3));
        let d = g.avg_degree();
        assert!(
            (d - 10.0).abs() < 2.0,
            "average degree {d} too far from target 10"
        );
    }

    #[test]
    fn undirected_recovers_exponent() {
        let g = chung_lu_undirected(ChungLuConfig::new(20_000, 10.0, 2.0, 11));
        let degs = degree_sequence(&g, DegreeKind::Out);
        let est = powerlaw_exponent_ccdf_fit(&degs, 5).unwrap();
        assert!(
            (est - 2.0).abs() < 0.5,
            "estimated exponent {est}, wanted ~2.0"
        );
    }

    #[test]
    fn directed_hits_average_degree_and_exponent() {
        let cfg = ChungLuConfig::new(20_000, 8.0, 1.8, 5);
        let g = chung_lu_directed(cfg, 2.5, 99);
        let d = g.avg_degree();
        assert!((d - 8.0).abs() < 2.0, "avg degree {d} vs target 8");
        let out = degree_sequence(&g, DegreeKind::Out);
        let est = powerlaw_exponent_ccdf_fit(&out, 5).unwrap();
        assert!(
            (est - 1.8).abs() < 0.5,
            "estimated out exponent {est}, wanted ~1.8"
        );
    }

    #[test]
    fn directed_no_self_loops() {
        let g = chung_lu_directed(ChungLuConfig::new(500, 6.0, 2.0, 2), 2.0, 3);
        for u in g.nodes() {
            assert!(!g.out_neighbors(u).contains(&u));
        }
    }

    #[test]
    fn small_extreme_gammas_do_not_panic() {
        for gamma in [1.1, 4.0, 9.0] {
            let g = chung_lu_undirected(ChungLuConfig::new(100, 4.0, gamma, 1));
            assert_eq!(g.node_count(), 100);
        }
    }
}
