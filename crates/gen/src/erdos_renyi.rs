//! Erdős–Rényi `G(n, p)` random graphs.
//!
//! Used for the paper's Figure 7 (non-power-law graphs with average degree
//! swept from 5 to 10⁴). Sampling skips over non-edges geometrically, so
//! generation costs `O(n + m)` rather than `O(n²)`.

use prsim_graph::{DiGraph, GraphBuilder, NodeId};
use rand::Rng;

use crate::rng_from_seed;

/// Generates a directed `G(n, p)` graph without self loops.
///
/// Every ordered pair `(u, v)`, `u ≠ v`, is an edge independently with
/// probability `p`. Pass `p = d̄ / (n − 1)` to target average out-degree d̄.
pub fn erdos_renyi_directed(n: usize, p: f64, seed: u64) -> DiGraph {
    assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
    let mut b = GraphBuilder::new();
    b.ensure_nodes(n);
    if n == 0 || p == 0.0 {
        return b.build();
    }
    let mut rng = rng_from_seed(seed);
    // Walk the flattened pair space of size n*(n-1) with geometric skips.
    let total: u64 = (n as u64) * (n as u64 - 1);
    let mut idx: u64 = 0;
    let log1p = (1.0 - p).ln();
    loop {
        if p < 1.0 {
            let r: f64 = rng.gen_range(f64::EPSILON..1.0);
            idx += (r.ln() / log1p).floor() as u64;
        }
        if idx >= total {
            break;
        }
        let u = (idx / (n as u64 - 1)) as usize;
        let mut v = (idx % (n as u64 - 1)) as usize;
        if v >= u {
            v += 1; // skip the diagonal
        }
        b.add_edge(u as NodeId, v as NodeId);
        idx += 1;
    }
    b.build()
}

/// Generates an undirected `G(n, p)` graph, stored symmetrically.
pub fn erdos_renyi_undirected(n: usize, p: f64, seed: u64) -> DiGraph {
    assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
    let mut b = GraphBuilder::new();
    b.ensure_nodes(n);
    if n < 2 || p == 0.0 {
        return b.build();
    }
    let mut rng = rng_from_seed(seed);
    let total: u64 = (n as u64) * (n as u64 - 1) / 2;
    let mut idx: u64 = 0;
    let log1p = (1.0 - p).ln();
    loop {
        if p < 1.0 {
            let r: f64 = rng.gen_range(f64::EPSILON..1.0);
            idx += (r.ln() / log1p).floor() as u64;
        }
        if idx >= total {
            break;
        }
        let (u, v) = unrank_pair(idx, n as u64);
        b.add_undirected_edge(u as NodeId, v as NodeId);
        idx += 1;
    }
    b.build()
}

/// Maps a linear index in `0..n(n-1)/2` to the `idx`-th pair `(u, v)` with
/// `u < v`, ordered lexicographically.
fn unrank_pair(idx: u64, n: u64) -> (u32, u32) {
    // Row u starts at offset u*n - u*(u+1)/2 - u... solve via the standard
    // triangular-number inversion.
    // Pairs in row u: (u, u+1..n), count n-1-u. Cumulative before row u:
    // C(u) = u*(2n - u - 1)/2. Find largest u with C(u) <= idx.
    let fidx = idx as f64;
    let fn_ = n as f64;
    // Initial guess from the quadratic formula, then correct locally.
    let mut u = ((2.0 * fn_ - 1.0 - ((2.0 * fn_ - 1.0).powi(2) - 8.0 * fidx).sqrt()) / 2.0)
        .floor()
        .max(0.0) as u64;
    let cum = |u: u64| u * (2 * n - u - 1) / 2;
    while u + 1 < n && cum(u + 1) <= idx {
        u += 1;
    }
    while u > 0 && cum(u) > idx {
        u -= 1;
    }
    let v = u + 1 + (idx - cum(u));
    (u as u32, v as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unrank_enumerates_all_pairs() {
        let n = 7u64;
        let total = n * (n - 1) / 2;
        let mut seen = Vec::new();
        for idx in 0..total {
            let (u, v) = unrank_pair(idx, n);
            assert!(u < v && (v as u64) < n, "bad pair ({u},{v})");
            seen.push((u, v));
        }
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len() as u64, total);
    }

    #[test]
    fn directed_edge_count_concentrates() {
        let n = 2_000;
        let d = 10.0;
        let p = d / (n as f64 - 1.0);
        let g = erdos_renyi_directed(n, p, 42);
        let m = g.edge_count() as f64;
        let expect = n as f64 * d;
        assert!(
            (m - expect).abs() < 0.1 * expect,
            "m = {m}, expected about {expect}"
        );
        for u in g.nodes() {
            assert!(!g.out_neighbors(u).contains(&u), "self loop at {u}");
        }
    }

    #[test]
    fn undirected_edge_count_concentrates_and_symmetric() {
        let n = 2_000;
        let p = 0.005;
        let g = erdos_renyi_undirected(n, p, 7);
        let m = g.edge_count() as f64; // both directions stored
        let expect = (n * (n - 1) / 2) as f64 * p * 2.0;
        assert!(
            (m - expect).abs() < 0.15 * expect,
            "m = {m}, expected about {expect}"
        );
        for u in g.nodes() {
            for &v in g.out_neighbors(u) {
                assert!(g.out_neighbors(v).contains(&u));
            }
        }
    }

    #[test]
    fn p_zero_and_one() {
        let g = erdos_renyi_directed(50, 0.0, 1);
        assert_eq!(g.edge_count(), 0);
        let g = erdos_renyi_directed(20, 1.0, 1);
        assert_eq!(g.edge_count(), 20 * 19);
        let g = erdos_renyi_undirected(20, 1.0, 1);
        assert_eq!(g.edge_count(), 20 * 19);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = erdos_renyi_directed(500, 0.01, 3);
        let b = erdos_renyi_directed(500, 0.01, 3);
        assert_eq!(a, b);
        let c = erdos_renyi_directed(500, 0.01, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn empty_graph() {
        let g = erdos_renyi_directed(0, 0.5, 1);
        assert_eq!(g.node_count(), 0);
    }
}
