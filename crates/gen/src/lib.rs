//! # prsim-gen
//!
//! Synthetic graph generators for the PRSim suite.
//!
//! The paper's synthetic experiments (Figures 6 and 7) need two families:
//!
//! * **Power-law graphs with a prescribed cumulative out-degree exponent γ
//!   and average degree d̄** — the paper uses the hyperbolic graph
//!   generator; we substitute the Chung–Lu expected-degree model
//!   ([`chung_lu`]), which directly controls both dials (γ, d̄) that the
//!   paper's theory says matter, plus Barabási–Albert ([`ba`]) as a second
//!   power-law family (γ = 2).
//! * **Erdős–Rényi graphs** ([`erdos_renyi`]) with varying density for the
//!   non-power-law experiments.
//!
//! All generators take an explicit `u64` seed and are fully deterministic
//! for a given seed, so every figure in EXPERIMENTS.md is reproducible
//! bit-for-bit.
//!
//! [`toys`] provides the small fixed graphs used across the test suites,
//! including the paper's §3.4 two-level gadget on which the *simple*
//! backward walk has unbounded estimates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ba;
pub mod chung_lu;
pub mod erdos_renyi;
pub mod sbm;
pub mod toys;

pub use ba::barabasi_albert;
pub use chung_lu::{chung_lu_directed, chung_lu_undirected, ChungLuConfig};
pub use erdos_renyi::{erdos_renyi_directed, erdos_renyi_undirected};
pub use sbm::{community_of, planted_partition};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Errors produced by the synthetic graph generators.
///
/// The generators are mostly infallible for sane parameters; this type
/// exists for the places where a size request can overflow host
/// arithmetic before any allocation happens (e.g. the `n·(n−1)` edge
/// count of a complete graph).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenError {
    /// A requested size overflows `usize` arithmetic or exceeds the
    /// graph substrate's node-id range (`u32::MAX - 1`).
    SizeOverflow {
        /// Which generator rejected the request.
        generator: &'static str,
        /// The offending size parameter.
        n: usize,
    },
}

impl std::fmt::Display for GenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GenError::SizeOverflow { generator, n } => write!(
                f,
                "{generator}: size {n} overflows the generator's edge arithmetic \
                 or the u32 node-id range"
            ),
        }
    }
}

impl std::error::Error for GenError {}

/// Creates the deterministic RNG used by every generator in this crate.
pub(crate) fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}
