//! Planted-partition (stochastic block model) generator.
//!
//! Nodes are split into equal-size communities; an undirected edge appears
//! with probability `p_in` inside a community and `p_out` across
//! communities. This is the standard substrate for tasks where SimRank's
//! structural signal matters (link prediction, community-aware ranking):
//! unlike Chung–Lu graphs — whose edges are independent given degrees —
//! planted partitions have real local structure to recover.

use prsim_graph::{DiGraph, GraphBuilder, NodeId};
use rand::Rng;

use crate::rng_from_seed;

/// Generates an undirected planted-partition graph with `communities`
/// equal blocks of `size` nodes. Node `v` belongs to block `v / size`.
///
/// # Panics
///
/// Panics unless `0 ≤ p_out ≤ p_in ≤ 1` and both dimensions are positive.
pub fn planted_partition(
    communities: usize,
    size: usize,
    p_in: f64,
    p_out: f64,
    seed: u64,
) -> DiGraph {
    assert!(communities > 0 && size > 0);
    assert!((0.0..=1.0).contains(&p_in) && (0.0..=1.0).contains(&p_out));
    assert!(p_out <= p_in, "planted structure requires p_out <= p_in");
    let n = communities * size;
    let mut rng = rng_from_seed(seed);
    let mut b = GraphBuilder::new();
    b.ensure_nodes(n);

    // Intra-community edges: explicit pair loop per block (blocks are
    // small by construction).
    for c in 0..communities {
        let base = c * size;
        for i in 0..size {
            for j in (i + 1)..size {
                if rng.gen::<f64>() < p_in {
                    b.add_undirected_edge((base + i) as NodeId, (base + j) as NodeId);
                }
            }
        }
    }

    // Inter-community edges: geometric skip over all unordered pairs,
    // rejecting intra pairs (they were handled above).
    if p_out > 0.0 {
        let total: u64 = (n as u64) * (n as u64 - 1) / 2;
        let log1p = (1.0 - p_out).ln();
        let mut idx: u64 = 0;
        loop {
            if p_out < 1.0 {
                let r: f64 = rng.gen_range(f64::EPSILON..1.0);
                idx += (r.ln() / log1p).floor() as u64;
            }
            if idx >= total {
                break;
            }
            let (u, v) = unrank_pair(idx, n as u64);
            if (u as usize / size) != (v as usize / size) {
                b.add_undirected_edge(u, v);
            }
            idx += 1;
        }
    }
    b.build()
}

/// Community label of node `v` for a graph from [`planted_partition`].
#[inline]
pub fn community_of(v: NodeId, size: usize) -> usize {
    v as usize / size
}

// Same triangular unranking as the Erdős–Rényi module (kept private
// there); duplicated locally to keep the modules self-contained.
fn unrank_pair(idx: u64, n: u64) -> (u32, u32) {
    let fidx = idx as f64;
    let fn_ = n as f64;
    let mut u = ((2.0 * fn_ - 1.0 - ((2.0 * fn_ - 1.0).powi(2) - 8.0 * fidx).sqrt()) / 2.0)
        .floor()
        .max(0.0) as u64;
    let cum = |u: u64| u * (2 * n - u - 1) / 2;
    while u + 1 < n && cum(u + 1) <= idx {
        u += 1;
    }
    while u > 0 && cum(u) > idx {
        u -= 1;
    }
    let v = u + 1 + (idx - cum(u));
    (u as u32, v as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_symmetry() {
        let g = planted_partition(10, 20, 0.3, 0.01, 5);
        assert_eq!(g.node_count(), 200);
        for u in g.nodes() {
            for &v in g.out_neighbors(u) {
                assert!(g.out_neighbors(v).contains(&u));
            }
        }
    }

    #[test]
    fn intra_density_dominates() {
        let g = planted_partition(8, 25, 0.4, 0.005, 9);
        let size = 25;
        let mut intra = 0usize;
        let mut inter = 0usize;
        for (u, v) in g.edges() {
            if community_of(u, size) == community_of(v, size) {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(intra > 4 * inter, "intra {intra} vs inter {inter}");
        // Expected intra edges (directed count): 8 * C(25,2) * 0.4 * 2 = 1920.
        let expect = 8.0 * 300.0 * 0.4 * 2.0;
        assert!(
            (intra as f64 - expect).abs() < 0.2 * expect,
            "intra {intra} vs expected {expect}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            planted_partition(4, 10, 0.5, 0.02, 3),
            planted_partition(4, 10, 0.5, 0.02, 3)
        );
        assert_ne!(
            planted_partition(4, 10, 0.5, 0.02, 3),
            planted_partition(4, 10, 0.5, 0.02, 4)
        );
    }

    #[test]
    fn zero_p_out_gives_disconnected_blocks() {
        let g = planted_partition(3, 5, 1.0, 0.0, 1);
        let (_, k) = prsim_graph::traversal::weakly_connected_components(&g);
        assert_eq!(k, 3);
    }

    #[test]
    #[should_panic(expected = "p_out <= p_in")]
    fn rejects_inverted_probabilities() {
        let _ = planted_partition(2, 5, 0.1, 0.5, 1);
    }
}
